// Differential lockdown for the work-stealing match scheduler: across
// seeded SKEWED workloads (power-law graphs, so one hub focus dwarfs the
// rest — exactly the shape the scheduler exists for), answers and every
// WORK counter must be byte-identical to the serial schedule at threads
// {1, 2, 4, 8}, both at the default chunk grain and under forced-steal
// stress (grain 1: every focus is its own stealable task). The same
// contract covers pool-parallelized DPar (the partition must be
// IDENTICAL to the serial build) and the stealable fragment scheduling
// of PQMatch/PEnum. Only the scheduler telemetry (scheduler_tasks /
// scheduler_steals) may vary with the schedule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/qmatch.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "parallel/dpar.h"
#include "parallel/penum.h"
#include "parallel/pqmatch.h"

namespace qgp {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

// Power-law graphs: hub degrees dwarf the median, so the largest-first
// focus order and the stealable fragment tasks actually rebalance
// something rather than degenerate to the uniform case.
Graph SkewedGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 140 + seed % 61;
  gc.num_edges = 520 + (seed % 7) * 40;
  gc.num_node_labels = 4 + seed % 3;
  gc.num_edge_labels = 3;
  gc.model = SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

std::vector<Pattern> SkewedPatterns(const Graph& g, uint64_t seed) {
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4 + seed % 2;
  pc.num_quantified = 1 + seed % 2;
  pc.kind = (seed % 2 == 0) ? QuantKind::kRatio : QuantKind::kNumeric;
  pc.op = QuantOp::kGe;
  pc.percent = 30.0 + 20.0 * (seed % 2);
  pc.count = 1 + seed % 2;
  pc.num_negated = seed % 2;
  return GeneratePatternSuite(g, 3, pc, seed * 131 + 7);
}

// Every counter that describes WORK (not the schedule) must match.
void ExpectWorkStatsEqual(const MatchStats& a, const MatchStats& b,
                          const std::string& what) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << what;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << what;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << what;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << what;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << what;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << what;
  EXPECT_EQ(a.inc_candidates_checked, b.inc_candidates_checked) << what;
  EXPECT_EQ(a.balls_built, b.balls_built) << what;
}

void ExpectPartitionsIdentical(const Partition& a, const Partition& b) {
  ASSERT_EQ(a.d, b.d);
  EXPECT_EQ(a.num_border_nodes, b.num_border_nodes);
  EXPECT_EQ(a.base_region, b.base_region);
  ASSERT_EQ(a.fragments.size(), b.fragments.size());
  for (size_t i = 0; i < a.fragments.size(); ++i) {
    SCOPED_TRACE("fragment " + std::to_string(i));
    EXPECT_EQ(a.fragments[i].owned_global, b.fragments[i].owned_global);
    EXPECT_EQ(a.fragments[i].owned_local, b.fragments[i].owned_local);
    EXPECT_EQ(a.fragments[i].sub.local_to_global,
              b.fragments[i].sub.local_to_global);
    EXPECT_EQ(a.fragments[i].sub.graph.num_vertices(),
              b.fragments[i].sub.graph.num_vertices());
    EXPECT_EQ(a.fragments[i].sub.graph.num_edges(),
              b.fragments[i].sub.graph.num_edges());
  }
}

// QMatch through the work-stealing focus map: answers AND work counters
// identical to the serial schedule at every thread count, at the default
// grain and under forced-steal stress (grain 1).
TEST(SchedulerDeterminismTest, QMatchAnswersAndStatsMatchSerial) {
  size_t compared = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g = SkewedGraph(seed);
    std::vector<Pattern> patterns = SkewedPatterns(g, seed);
    for (size_t p = 0; p < patterns.size(); ++p) {
      const Pattern& q = patterns[p];
      SCOPED_TRACE("seed " + std::to_string(seed) + " pattern " +
                   std::to_string(p));
      MatchStats serial_stats;
      auto serial = QMatch::Evaluate(q, g, {}, &serial_stats);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (size_t threads : kThreadCounts) {
        for (size_t grain : {size_t{0}, size_t{1}}) {
          ThreadPool pool(threads);
          MatchOptions opts;
          opts.scheduler_grain = grain;
          MatchStats par_stats;
          auto par = QMatch::Evaluate(q, g, opts, &par_stats, &pool);
          ASSERT_TRUE(par.ok()) << par.status().ToString();
          const std::string what = "threads=" + std::to_string(threads) +
                                   " grain=" + std::to_string(grain);
          EXPECT_EQ(serial.value(), par.value()) << what;
          ExpectWorkStatsEqual(serial_stats, par_stats, what);
        }
      }
      ++compared;
    }
  }
  EXPECT_GE(compared, 20u);
}

// Pool-parallelized DPar partitioning == serial DPar, at every thread
// count, for several d values. DParExtend widening must agree with a
// from-scratch DPar at the wider d, pool or no pool.
TEST(SchedulerDeterminismTest, ParallelDParIsIdenticalToSerial) {
  size_t compared = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = SkewedGraph(seed * 17 + 3);
    for (int d : {1, 2, 3}) {
      DParConfig dc;
      dc.num_fragments = 3 + seed % 3;
      dc.d = d;
      SCOPED_TRACE("seed " + std::to_string(seed) + " d=" +
                   std::to_string(d) + " n=" +
                   std::to_string(dc.num_fragments));
      auto serial = DPar(g, dc);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      ASSERT_TRUE(serial->Validate(g).ok());
      for (size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        auto par = DPar(g, dc, nullptr, &pool);
        ASSERT_TRUE(par.ok()) << par.status().ToString();
        ExpectPartitionsIdentical(*serial, *par);
      }
      ++compared;
    }
  }
  EXPECT_GE(compared, 15u);

  // Extend path: serial extend == pool extend.
  Graph g = SkewedGraph(41);
  DParConfig dc;
  dc.num_fragments = 4;
  dc.d = 1;
  auto base = DPar(g, dc);
  ASSERT_TRUE(base.ok());
  auto wide_serial = DParExtend(g, *base, 2);
  ASSERT_TRUE(wide_serial.ok());
  ThreadPool pool(4);
  auto wide_par = DParExtend(g, *base, 2, 1.6, &pool);
  ASSERT_TRUE(wide_par.ok());
  ExpectPartitionsIdentical(*wide_serial, *wide_par);
}

// PQMatch/PEnum through the stealable fragment schedule: thread mode
// (work-stealing pool) and simulated mode (sequential spec) must return
// identical answers and work stats, and both must equal sequential
// QMatch over the whole graph.
TEST(SchedulerDeterminismTest, StealableFragmentScheduleMatchesSimulated) {
  size_t compared = 0;
  for (uint64_t seed = 2; seed <= 7; ++seed) {
    Graph g = SkewedGraph(seed * 29 + 1);
    DParConfig dc;
    dc.num_fragments = 4;
    dc.d = 2;
    auto part = DPar(g, dc);
    ASSERT_TRUE(part.ok());
    std::vector<Pattern> patterns = SkewedPatterns(g, seed + 50);
    for (size_t p = 0; p < patterns.size(); ++p) {
      const Pattern& q = patterns[p];
      if (q.Radius() > dc.d) continue;
      SCOPED_TRACE("seed " + std::to_string(seed) + " pattern " +
                   std::to_string(p));
      auto sequential = QMatch::Evaluate(q, g);
      ASSERT_TRUE(sequential.ok());
      ParallelConfig sim;
      sim.mode = ExecutionMode::kSimulated;
      ParallelConfig thr;
      thr.mode = ExecutionMode::kThreads;
      for (const bool enum_based : {false, true}) {
        auto a = enum_based ? PEnum::Evaluate(q, *part, sim)
                            : PQMatch::Evaluate(q, *part, sim);
        auto b = enum_based ? PEnum::Evaluate(q, *part, thr)
                            : PQMatch::Evaluate(q, *part, thr);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        EXPECT_EQ(a->answers, sequential.value());
        EXPECT_EQ(b->answers, sequential.value());
        ExpectWorkStatsEqual(a->stats, b->stats,
                             enum_based ? "penum" : "pqmatch");
      }
      ++compared;
    }
  }
  EXPECT_GE(compared, 8u);
}

}  // namespace
}  // namespace qgp
