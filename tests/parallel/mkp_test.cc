#include "parallel/mkp.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

TEST(MkpTest, AssignsEverythingWhenCapacityAbounds) {
  std::vector<MkpItem> items{{5, 0}, {3, 1}, {8, 2}};
  std::vector<uint64_t> caps{100, 100};
  MkpAssignment a = SolveMkpGreedy(items, caps);
  EXPECT_EQ(a.assigned_count, 3u);
  for (int32_t bin : a.item_to_bin) {
    EXPECT_GE(bin, 0);
    EXPECT_LT(bin, 2);
  }
}

TEST(MkpTest, RespectsCapacities) {
  std::vector<MkpItem> items{{6, 0}, {6, 1}, {6, 2}};
  std::vector<uint64_t> caps{10, 10};
  MkpAssignment a = SolveMkpGreedy(items, caps);
  // Only one item fits per bin.
  EXPECT_EQ(a.assigned_count, 2u);
  std::vector<uint64_t> load(2, 0);
  for (size_t i = 0; i < items.size(); ++i) {
    if (a.item_to_bin[i] >= 0) load[a.item_to_bin[i]] += items[i].weight;
  }
  EXPECT_LE(load[0], 10u);
  EXPECT_LE(load[1], 10u);
}

TEST(MkpTest, PrefersCountMaximization) {
  // Lightest-first packs the three small items even though the heavy one
  // arrived first.
  std::vector<MkpItem> items{{9, 0}, {3, 1}, {3, 2}, {3, 3}};
  std::vector<uint64_t> caps{9};
  MkpAssignment a = SolveMkpGreedy(items, caps);
  EXPECT_EQ(a.assigned_count, 3u);
  EXPECT_EQ(a.item_to_bin[0], -1);  // the heavy item is the one dropped
}

TEST(MkpTest, BalancesAcrossBins) {
  std::vector<MkpItem> items;
  for (uint64_t i = 0; i < 8; ++i) items.push_back({10, i});
  std::vector<uint64_t> caps{40, 40};
  MkpAssignment a = SolveMkpGreedy(items, caps);
  EXPECT_EQ(a.assigned_count, 8u);
  std::vector<int> count(2, 0);
  for (int32_t bin : a.item_to_bin) ++count[bin];
  EXPECT_EQ(count[0], 4);  // worst-fit keeps the bins level
  EXPECT_EQ(count[1], 4);
}

TEST(MkpTest, EmptyInputs) {
  EXPECT_EQ(SolveMkpGreedy({}, {10}).assigned_count, 0u);
  MkpAssignment a = SolveMkpGreedy({{5, 0}}, {});
  EXPECT_EQ(a.assigned_count, 0u);
  EXPECT_EQ(a.item_to_bin[0], -1);
}

TEST(MkpTest, ZeroCapacityBins) {
  std::vector<MkpItem> items{{1, 0}};
  std::vector<uint64_t> caps{0, 0};
  MkpAssignment a = SolveMkpGreedy(items, caps);
  EXPECT_EQ(a.assigned_count, 0u);
}

}  // namespace
}  // namespace qgp
