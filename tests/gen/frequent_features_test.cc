#include "gen/frequent_features.h"

#include <gtest/gtest.h>

#include "gen/social_gen.h"
#include "graph/graph_builder.h"

namespace qgp {
namespace {

TEST(MineEdgeFeaturesTest, ExactCountsOnSmallGraph) {
  GraphBuilder b;
  VertexId p1 = b.AddVertex("p");
  VertexId p2 = b.AddVertex("p");
  VertexId q1 = b.AddVertex("q");
  (void)b.AddEdge(p1, p2, "e");
  (void)b.AddEdge(p2, p1, "e");
  (void)b.AddEdge(p1, q1, "f");
  Graph g = std::move(b).Build().value();

  auto features = MineEdgeFeatures(g, 10);
  ASSERT_EQ(features.size(), 2u);
  // (p, e, p) occurs twice and ranks first.
  EXPECT_EQ(features[0].count, 2u);
  EXPECT_EQ(features[0].src_label, g.dict().Find("p"));
  EXPECT_EQ(features[0].edge_label, g.dict().Find("e"));
  EXPECT_EQ(features[0].dst_label, g.dict().Find("p"));
  EXPECT_EQ(features[1].count, 1u);
}

TEST(MineEdgeFeaturesTest, TopKTruncates) {
  SocialConfig c;
  c.num_users = 500;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  auto features = MineEdgeFeatures(*g, 3);
  EXPECT_EQ(features.size(), 3u);
  EXPECT_GE(features[0].count, features[1].count);
  EXPECT_GE(features[1].count, features[2].count);
}

TEST(MineEdgeFeaturesTest, FollowDominatesSocialGraph) {
  SocialConfig c;
  c.num_users = 1000;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  auto features = MineEdgeFeatures(*g, 5);
  ASSERT_FALSE(features.empty());
  EXPECT_EQ(features[0].edge_label, g->dict().Find("follow"));
}

TEST(MinePathFeaturesTest, FindsTwoHopPaths) {
  SocialConfig c;
  c.num_users = 500;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  auto paths = MinePathFeatures(*g, 2, 10, 5000, 42);
  ASSERT_FALSE(paths.empty());
  for (const PathFeature& p : paths) {
    EXPECT_EQ(p.node_labels.size(), 3u);
    EXPECT_EQ(p.edge_labels.size(), 2u);
    EXPECT_GT(p.count, 0u);
  }
  // Counts are descending.
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].count, paths[i].count);
  }
}

TEST(MinePathFeaturesTest, HandlesInvalidLengths) {
  SocialConfig c;
  c.num_users = 100;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(MinePathFeatures(*g, 0, 5, 100, 1).empty());
  EXPECT_TRUE(MinePathFeatures(*g, 4, 5, 100, 1).empty());
}

TEST(MinePathFeaturesTest, DeterministicUnderSeed) {
  SocialConfig c;
  c.num_users = 300;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  auto a = MinePathFeatures(*g, 2, 8, 2000, 5);
  auto b = MinePathFeatures(*g, 2, 8, 2000, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node_labels, b[i].node_labels);
    EXPECT_EQ(a[i].count, b[i].count);
  }
}

}  // namespace
}  // namespace qgp
