#include "gen/social_gen.h"

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace qgp {
namespace {

TEST(SocialGenTest, SchemaLabelsPresent) {
  SocialConfig c;
  c.num_users = 2000;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  for (const char* label : {"person", "product", "album", "club", "hobby",
                            "city"}) {
    EXPECT_TRUE(g->dict().Contains(label)) << label;
    EXPECT_GT(g->NumVerticesWithLabel(g->dict().Find(label)), 0u) << label;
  }
  for (const char* label : {"follow", "like", "recom", "in", "lives_in",
                            "has_hobby"}) {
    EXPECT_NE(g->dict().Find(label), kInvalidLabel) << label;
  }
}

TEST(SocialGenTest, PersonsAreFirstVertices) {
  SocialConfig c;
  c.num_users = 500;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  Label person = g->dict().Find("person");
  for (VertexId v = 0; v < 500; ++v) {
    EXPECT_EQ(g->vertex_label(v), person);
  }
}

TEST(SocialGenTest, EveryUserFollowsSomeone) {
  SocialConfig c;
  c.num_users = 300;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  Label follow = g->dict().Find("follow");
  for (VertexId v = 0; v < 300; ++v) {
    EXPECT_GE(g->OutDegreeWithLabel(v, follow), 1u);
  }
}

TEST(SocialGenTest, FollowTargetsArePersons) {
  SocialConfig c;
  c.num_users = 300;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  Label follow = g->dict().Find("follow");
  Label person = g->dict().Find("person");
  for (VertexId v = 0; v < 300; ++v) {
    for (const Neighbor& n : g->OutNeighborsWithLabel(v, follow)) {
      EXPECT_EQ(g->vertex_label(n.v), person);
      EXPECT_NE(n.v, v);  // no self-follow
    }
  }
}

TEST(SocialGenTest, CommunityCorrelationExists) {
  // Within a community most members recommend the favourite product, so
  // some product must collect many recoms — the skew quantified patterns
  // rely on.
  SocialConfig c;
  c.num_users = 2000;
  c.community_size = 200;
  auto g = GenerateSocialGraph(c);
  ASSERT_TRUE(g.ok());
  Label recom = g->dict().Find("recom");
  Label product = g->dict().Find("product");
  size_t max_recoms = 0;
  for (VertexId v : g->VerticesWithLabel(product)) {
    max_recoms = std::max(max_recoms, g->InDegreeWithLabel(v, recom));
  }
  EXPECT_GT(max_recoms, 50u);
}

TEST(SocialGenTest, Deterministic) {
  SocialConfig c;
  c.num_users = 400;
  auto a = GenerateSocialGraph(c);
  auto b = GenerateSocialGraph(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_vertices(), b->num_vertices());
  EXPECT_EQ(a->num_edges(), b->num_edges());
}

TEST(SocialGenTest, RejectsEmptyPools) {
  SocialConfig c;
  c.num_users = 0;
  EXPECT_FALSE(GenerateSocialGraph(c).ok());
  c.num_users = 10;
  c.num_products = 0;
  EXPECT_FALSE(GenerateSocialGraph(c).ok());
}

}  // namespace
}  // namespace qgp
