#include "gen/synthetic_gen.h"

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace qgp {
namespace {

TEST(SyntheticGenTest, ProducesRequestedSizes) {
  SyntheticConfig c;
  c.num_vertices = 500;
  c.num_edges = 1500;
  auto g = GenerateSynthetic(c);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 500u);
  // Deduplication may shave a few edges; stay within 2%.
  EXPECT_GE(g->num_edges(), 1470u);
  EXPECT_LE(g->num_edges(), 1500u);
}

TEST(SyntheticGenTest, DeterministicUnderSeed) {
  SyntheticConfig c;
  c.num_vertices = 200;
  c.num_edges = 600;
  c.seed = 123;
  auto a = GenerateSynthetic(c);
  auto b = GenerateSynthetic(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (VertexId v = 0; v < a->num_vertices(); ++v) {
    EXPECT_EQ(a->vertex_label(v), b->vertex_label(v));
    auto na = a->OutNeighbors(v);
    auto nb = b->OutNeighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(SyntheticGenTest, SeedsDiffer) {
  SyntheticConfig c;
  c.num_vertices = 200;
  c.num_edges = 600;
  c.seed = 1;
  auto a = GenerateSynthetic(c);
  c.seed = 2;
  auto b = GenerateSynthetic(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Degrees are mostly fixed by the lattice; compare labels and targets.
  bool any_diff = false;
  for (VertexId v = 0; v < a->num_vertices() && !any_diff; ++v) {
    if (a->vertex_label(v) != b->vertex_label(v)) any_diff = true;
    auto na = a->OutNeighbors(v);
    auto nb = b->OutNeighbors(v);
    if (na.size() != nb.size()) {
      any_diff = true;
    } else {
      for (size_t i = 0; i < na.size(); ++i) {
        if (!(na[i] == nb[i])) {
          any_diff = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticGenTest, LabelAlphabetRespected) {
  SyntheticConfig c;
  c.num_vertices = 300;
  c.num_edges = 900;
  c.num_node_labels = 30;
  c.num_edge_labels = 10;
  auto g = GenerateSynthetic(c);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeGraphStats(*g);
  EXPECT_LE(s.num_node_labels, 30u);
  EXPECT_LE(s.num_edge_labels, 10u);
  EXPECT_GT(s.num_node_labels, 5u);  // Zipf still touches many labels
}

TEST(SyntheticGenTest, PowerLawSkewsInDegree) {
  SyntheticConfig c;
  c.num_vertices = 2000;
  c.num_edges = 10000;
  c.model = SyntheticConfig::Model::kPowerLaw;
  auto g = GenerateSynthetic(c);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeGraphStats(*g);
  // A hub should exist with far more than the average in-degree.
  EXPECT_GT(s.max_in_degree, 20 * static_cast<size_t>(s.avg_out_degree));
}

TEST(SyntheticGenTest, RejectsDegenerateConfigs) {
  SyntheticConfig c;
  c.num_vertices = 0;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
  c.num_vertices = 10;
  c.num_node_labels = 0;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
}

TEST(SyntheticGenTest, NoSelfLoops) {
  SyntheticConfig c;
  c.num_vertices = 100;
  c.num_edges = 400;
  auto g = GenerateSynthetic(c);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    for (const Neighbor& n : g->OutNeighbors(v)) {
      EXPECT_NE(n.v, v);
    }
  }
}

}  // namespace
}  // namespace qgp
