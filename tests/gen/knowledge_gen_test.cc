#include "gen/knowledge_gen.h"

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(KnowledgeGenTest, SchemaLabelsPresent) {
  KnowledgeConfig c;
  c.num_scientists = 2000;
  auto g = GenerateKnowledgeGraph(c);
  ASSERT_TRUE(g.ok());
  for (const char* label :
       {"scientist", "university", "prize", "prof_title", "phd_degree",
        "country0"}) {
    EXPECT_TRUE(g->dict().Contains(label)) << label;
    EXPECT_GT(g->NumVerticesWithLabel(g->dict().Find(label)), 0u) << label;
  }
}

TEST(KnowledgeGenTest, ProfessorFractionRoughlyRespected) {
  KnowledgeConfig c;
  c.num_scientists = 4000;
  c.professor_frac = 0.35;
  auto g = GenerateKnowledgeGraph(c);
  ASSERT_TRUE(g.ok());
  Label is_a = g->dict().Find("is_a");
  size_t profs = 0;
  for (VertexId v = 0; v < c.num_scientists; ++v) {
    if (g->OutDegreeWithLabel(v, is_a) > 0) ++profs;
  }
  double frac = static_cast<double>(profs) / c.num_scientists;
  EXPECT_NEAR(frac, 0.35, 0.05);
}

TEST(KnowledgeGenTest, AdvisorEdgesConnectScientists) {
  KnowledgeConfig c;
  c.num_scientists = 1000;
  auto g = GenerateKnowledgeGraph(c);
  ASSERT_TRUE(g.ok());
  Label advisor = g->dict().Find("advisor");
  Label scientist = g->dict().Find("scientist");
  size_t advisor_edges = 0;
  for (VertexId v = 0; v < c.num_scientists; ++v) {
    for (const Neighbor& n : g->OutNeighborsWithLabel(v, advisor)) {
      EXPECT_EQ(g->vertex_label(n.v), scientist);
      ++advisor_edges;
    }
  }
  EXPECT_GT(advisor_edges, 100u);
}

TEST(KnowledgeGenTest, SupportsQ4StyleQueries) {
  // A Q4-shaped query (professors without a PhD advising >= p professor
  // students) must be expressible and typically non-empty.
  KnowledgeConfig c;
  c.num_scientists = 3000;
  c.phd_frac_prof = 0.7;  // leave a healthy no-PhD professor population
  auto graph = GenerateKnowledgeGraph(c);
  ASSERT_TRUE(graph.ok());
  Graph g = std::move(graph).value();
  LabelDict& dict = g.mutable_dict();

  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("scientist"), "xo");
  PatternNodeId prof = q.AddNode(dict.Intern("prof_title"), "prof");
  PatternNodeId z = q.AddNode(dict.Intern("scientist"), "z");
  PatternNodeId phd = q.AddNode(dict.Intern("phd_degree"), "phd");
  ASSERT_TRUE(q.AddEdge(xo, prof, dict.Intern("is_a")).ok());
  ASSERT_TRUE(q.AddEdge(xo, z, dict.Intern("advisor"),
                        Quantifier::Numeric(QuantOp::kGe, 2))
                  .ok());
  ASSERT_TRUE(q.AddEdge(z, prof, dict.Intern("is_a")).ok());
  ASSERT_TRUE(q.AddEdge(xo, phd, dict.Intern("has_degree"),
                        Quantifier::Negation())
                  .ok());
  ASSERT_TRUE(q.set_focus(xo).ok());

  auto answers = QMatch::Evaluate(q, g);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_FALSE(answers.value().empty());
  // Every answer must really lack the PhD edge.
  Label has_degree = g.dict().Find("has_degree");
  for (VertexId v : answers.value()) {
    EXPECT_EQ(g.OutDegreeWithLabel(v, has_degree), 0u);
  }
}

TEST(KnowledgeGenTest, Deterministic) {
  KnowledgeConfig c;
  c.num_scientists = 500;
  auto a = GenerateKnowledgeGraph(c);
  auto b = GenerateKnowledgeGraph(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
}

TEST(KnowledgeGenTest, RejectsDegenerateConfig) {
  KnowledgeConfig c;
  c.num_scientists = 0;
  EXPECT_FALSE(GenerateKnowledgeGraph(c).ok());
  c.num_scientists = 10;
  c.num_countries = 0;
  EXPECT_FALSE(GenerateKnowledgeGraph(c).ok());
}

}  // namespace
}  // namespace qgp
