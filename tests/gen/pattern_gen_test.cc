#include "gen/pattern_gen.h"

#include <gtest/gtest.h>

#include "core/naive_matcher.h"
#include "core/pattern_analysis.h"
#include "gen/social_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

Graph SmallSocial() {
  SocialConfig c;
  c.num_users = 800;
  c.community_size = 100;
  return std::move(GenerateSocialGraph(c)).value();
}

TEST(PatternGenTest, ProducesRequestedShape) {
  Graph g = SmallSocial();
  PatternGenConfig c;
  c.num_nodes = 5;
  c.num_edges = 6;
  c.num_quantified = 2;
  c.num_negated = 1;
  auto features = MineEdgeFeatures(g, 20);
  Rng rng(3);
  auto p = GeneratePattern(g, features, c, rng);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // One extra node may be added by a fresh-node negation.
  EXPECT_GE(p->num_nodes(), 5u);
  EXPECT_LE(p->num_nodes(), 6u);
  EXPECT_GE(p->num_edges(), 6u);
  PatternSize size = ComputePatternSize(*p);
  EXPECT_EQ(size.num_negated, 1u);
  EXPECT_TRUE(p->Validate(c.max_quantified_per_path).ok());
}

TEST(PatternGenTest, QuantifierKindRespected) {
  Graph g = SmallSocial();
  auto features = MineEdgeFeatures(g, 20);
  PatternGenConfig c;
  c.num_nodes = 4;
  c.num_edges = 4;
  c.num_quantified = 1;
  c.num_negated = 0;
  c.kind = QuantKind::kNumeric;
  c.count = 3;
  Rng rng(5);
  auto p = GeneratePattern(g, features, c, rng);
  ASSERT_TRUE(p.ok());
  bool found = false;
  for (PatternEdgeId e = 0; e < p->num_edges(); ++e) {
    const Quantifier& q = p->edge(e).quantifier;
    if (!q.IsExistential()) {
      EXPECT_EQ(q.kind(), QuantKind::kNumeric);
      EXPECT_EQ(q.count(), 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PatternGenTest, StratifiedPatternHasWitness) {
  // Patterns are sampled from instances, so the stratified positive part
  // must have at least one match.
  SyntheticConfig gc;
  gc.num_vertices = 60;
  gc.num_edges = 180;
  gc.num_node_labels = 6;
  gc.num_edge_labels = 3;
  auto graph = GenerateSynthetic(gc);
  ASSERT_TRUE(graph.ok());
  PatternGenConfig c;
  c.num_nodes = 4;
  c.num_edges = 4;
  c.num_quantified = 0;
  c.num_negated = 0;
  std::vector<Pattern> suite = GeneratePatternSuite(*graph, 5, c, 11);
  ASSERT_FALSE(suite.empty());
  for (const Pattern& p : suite) {
    auto pi = p.Pi();
    ASSERT_TRUE(pi.ok());
    auto answers =
        NaiveMatcher::EvaluatePositive(pi.value().first.Stratified(), *graph,
                                       2'000'000);
    if (!answers.ok()) continue;
    EXPECT_FALSE(answers.value().empty());
  }
}

TEST(PatternGenTest, SuiteIsDeterministic) {
  Graph g = SmallSocial();
  PatternGenConfig c;
  c.num_nodes = 4;
  c.num_edges = 5;
  auto a = GeneratePatternSuite(g, 3, c, 21);
  auto b = GeneratePatternSuite(g, 3, c, 21);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(PatternGenTest, RejectsTinyRequests) {
  Graph g = SmallSocial();
  PatternGenConfig c;
  c.num_nodes = 1;
  Rng rng(1);
  EXPECT_FALSE(GeneratePattern(g, {}, c, rng).ok());
}

TEST(PatternGenTest, NegatedEdgesValidatePathRule) {
  Graph g = SmallSocial();
  auto features = MineEdgeFeatures(g, 20);
  PatternGenConfig c;
  c.num_nodes = 5;
  c.num_edges = 6;
  c.num_quantified = 1;
  c.num_negated = 2;
  Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    auto p = GeneratePattern(g, features, c, rng);
    if (!p.ok()) continue;
    EXPECT_TRUE(p->Validate(c.max_quantified_per_path).ok());
    EXPECT_EQ(p->NegatedEdgeIds().size(), 2u);
  }
}

}  // namespace
}  // namespace qgp
