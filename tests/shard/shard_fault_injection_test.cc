// Fault injection for the scatter-gather coordinator: every test forces
// a deterministic failure through an armed failpoint — at the
// shard.scatter seam (before a shard evaluates), at the shard.gather
// seam (before a slice's answers join the union), server-side at
// engine.submit for the loopback deployment, or via deadline/cancel
// tokens — and asserts the documented partial-failure policy:
//
//  * kFailQuery: any shard failure fails the query with that shard's
//    error (the default — never a silently smaller answer set);
//  * kBestEffort: the query succeeds with partial=true and the failed
//    slice's structured error recorded; surviving slices are complete;
//  * whole-query cancel/deadline beats both policies (kCancelled /
//    kDeadlineExceeded, never partial);
//  * after DisarmAll, the same engines answer the same query completely
//    and correctly — no partial answers were cached anywhere.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "parallel/dpar.h"
#include "service/query_service.h"
#include "shard/shard.h"
#include "shard/sharded_engine.h"

namespace qgp {
namespace {

using shard::FailurePolicy;
using shard::ShardedEngine;
using shard::ShardedOptions;
using shard::ShardedOutcome;

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 60;
  gc.num_edges = 170;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

// A pattern with at least one answer on MakeGraph(7) — the tests assert
// the full (fault-free) answer set is non-empty so "partial" and
// "complete" are actually distinguishable.
QuerySpec MakeSpec(const Graph& g) {
  PatternGenConfig pc;
  pc.num_nodes = 3;
  pc.num_edges = 2;
  pc.num_quantified = 1;
  pc.num_negated = 0;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 8, pc, 21);
  QueryEngine probe(&g);
  for (Pattern& p : suite) {
    if (p.Radius() > 2) continue;
    QuerySpec spec;
    spec.pattern = std::move(p);
    auto out = probe.Submit(spec);
    if (out.ok() && !out->answers.empty()) return spec;
  }
  ADD_FAILURE() << "no pattern with answers generated";
  return {};
}

AnswerSet FullAnswers(const Graph& g, const QuerySpec& spec) {
  QueryEngine single(&g);
  auto out = single.Submit(spec);
  EXPECT_TRUE(out.ok());
  return out.ok() ? out->answers : AnswerSet{};
}

class ShardFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = MakeGraph(7);
    spec_ = MakeSpec(graph_);
    full_ = FullAnswers(graph_, spec_);
    ASSERT_FALSE(full_.empty());
  }
  void TearDown() override { failpoint::DisarmAll(); }

  std::unique_ptr<ShardedEngine> MakeInProcess(FailurePolicy policy,
                                               int64_t shard_timeout_ms = 0) {
    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.d = 2;
    sopts.failure_policy = policy;
    sopts.shard_timeout_ms = shard_timeout_ms;
    sopts.engine.num_threads = 1;
    sopts.engine.enable_result_cache = true;  // poisoning would stick
    auto sharded = ShardedEngine::Create(graph_, sopts);
    EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
    return sharded.ok() ? std::move(*sharded) : nullptr;
  }

  Graph graph_;
  QuerySpec spec_;
  AnswerSet full_;
};

// ---- scatter failures, in-process ------------------------------------

TEST_F(ShardFaultTest, ScatterErrorFailQueryPolicy) {
  auto sharded = MakeInProcess(FailurePolicy::kFailQuery);
  ASSERT_NE(sharded, nullptr);
  failpoint::Action a;
  a.kind = failpoint::Action::Kind::kError;
  a.code = StatusCode::kUnavailable;
  a.message = "injected scatter fault";
  a.once = true;
  failpoint::Arm("shard.scatter", a);

  auto out = sharded->Submit(spec_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(failpoint::HitCount("shard.scatter"), 1u);

  // The healthy-again engine serves the complete answer — the failed
  // attempt left nothing behind (nothing was cached before the seam).
  failpoint::DisarmAll();
  auto again = sharded->Submit(spec_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->partial);
  EXPECT_EQ(again->answers, full_);
}

TEST_F(ShardFaultTest, ScatterErrorBestEffortReturnsPartial) {
  auto sharded = MakeInProcess(FailurePolicy::kBestEffort);
  ASSERT_NE(sharded, nullptr);
  failpoint::Action a;
  a.code = StatusCode::kUnavailable;
  a.message = "injected scatter fault";
  a.once = true;
  failpoint::Arm("shard.scatter", a);

  auto out = sharded->Submit(spec_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->partial);
  size_t failed = 0;
  for (const auto& slice : out->shards) {
    if (slice.ok) continue;
    ++failed;
    EXPECT_EQ(slice.error_code, "Unavailable");
    EXPECT_TRUE(slice.answers.empty());
  }
  EXPECT_EQ(failed, 1u);
  // Partial really is a subset: what survived is exactly the full set
  // minus the failed shard's owned answers.
  EXPECT_EQ(out->answers, SetIntersection(out->answers, full_));
  EXPECT_LT(out->answers.size(), full_.size() + 1);

  failpoint::DisarmAll();
  auto again = sharded->Submit(spec_);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->partial);
  EXPECT_EQ(again->answers, full_) << "partial answers leaked into a cache";
}

// ---- per-shard timeout ----------------------------------------------

TEST_F(ShardFaultTest, ShardTimeoutIsPolicyVisible) {
  // One shard sleeps past its per-shard deadline at the scatter seam;
  // its (already-expired) token then stops the evaluation immediately.
  auto sharded =
      MakeInProcess(FailurePolicy::kBestEffort, /*shard_timeout_ms=*/100);
  ASSERT_NE(sharded, nullptr);
  failpoint::Action a;
  a.kind = failpoint::Action::Kind::kDelayMs;
  a.delay_ms = 400;
  a.once = true;
  failpoint::Arm("shard.scatter", a);

  auto out = sharded->Submit(spec_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->partial);
  size_t timed_out = 0;
  for (const auto& slice : out->shards) {
    if (!slice.ok) {
      ++timed_out;
      EXPECT_EQ(slice.error_code, "DeadlineExceeded");
    }
  }
  EXPECT_EQ(timed_out, 1u);

  failpoint::DisarmAll();
  auto again = sharded->Submit(spec_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->answers, full_);
}

TEST_F(ShardFaultTest, ShardTimeoutFailsQueryUnderStrictPolicy) {
  auto sharded =
      MakeInProcess(FailurePolicy::kFailQuery, /*shard_timeout_ms=*/100);
  ASSERT_NE(sharded, nullptr);
  failpoint::Action a;
  a.kind = failpoint::Action::Kind::kDelayMs;
  a.delay_ms = 400;
  a.once = true;
  failpoint::Arm("shard.scatter", a);

  auto out = sharded->Submit(spec_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
}

// ---- whole-query cancel beats every policy ---------------------------

TEST_F(ShardFaultTest, CallerCancelNeverReturnsPartial) {
  auto sharded = MakeInProcess(FailurePolicy::kBestEffort);
  ASSERT_NE(sharded, nullptr);
  CancelToken token;
  token.RequestCancel();  // cancelled before the scatter even starts
  QuerySpec spec = spec_;
  spec.options.cancel = &token;
  auto out = sharded->Submit(spec);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);

  spec.options.cancel = nullptr;
  auto again = sharded->Submit(spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->answers, full_);
}

// ---- gather failures -------------------------------------------------

TEST_F(ShardFaultTest, GatherDropBestEffort) {
  auto sharded = MakeInProcess(FailurePolicy::kBestEffort);
  ASSERT_NE(sharded, nullptr);
  failpoint::Action a;
  a.code = StatusCode::kUnavailable;
  a.message = "injected gather drain";
  a.once = true;
  failpoint::Arm("shard.gather", a);

  auto out = sharded->Submit(spec_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->partial);
  ASSERT_FALSE(out->shards.empty());
  // Gather walks slices in shard order; "once" drops exactly the first.
  EXPECT_FALSE(out->shards[0].ok);
  EXPECT_EQ(out->shards[0].error_code, "Unavailable");
  EXPECT_GE(failpoint::HitCount("shard.gather"), 1u);
  EXPECT_EQ(out->answers, SetIntersection(out->answers, full_));

  // The dropped slice's shard DID evaluate (the failure was on the
  // coordinator side) — its result cache must hold the true per-shard
  // answer, not a poisoned one, so the retry is complete AND served
  // from warm caches.
  failpoint::DisarmAll();
  auto again = sharded->Submit(spec_);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->partial);
  EXPECT_EQ(again->answers, full_);
}

// ---- the same faults over loopback (process-per-shard transport) -----

class ShardLoopbackFaultTest : public ShardFaultTest {
 protected:
  void SetUp() override {
    ShardFaultTest::SetUp();
    DParConfig pc;
    pc.num_fragments = 2;
    pc.d = 2;
    auto partition = DPar(graph_, pc);
    ASSERT_TRUE(partition.ok());
    std::vector<int> ports;
    for (Fragment& f : partition->fragments) {
      EngineOptions eopts;
      eopts.num_threads = 1;
      eopts.enable_result_cache = true;
      engines_.push_back(shard::MakeShardEngine(
          f.sub.graph, f.owned_local, partition->d, eopts));  // copies
      service::ServiceOptions sopts;
      sopts.port = 0;
      services_.push_back(std::make_unique<service::QueryService>(
          engines_.back().get(), sopts));
      ASSERT_TRUE(services_.back()->Start().ok());
      ports.push_back(services_.back()->port());
    }
    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.d = 2;
    sopts.failure_policy = FailurePolicy::kBestEffort;
    sopts.remote_ports = ports;
    sopts.remote_read_timeout_ms = 5000;
    auto sharded = ShardedEngine::Create(graph_, std::move(*partition), sopts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    sharded_ = std::move(*sharded);
  }

  void TearDown() override {
    failpoint::DisarmAll();
    sharded_.reset();  // client connections close before the servers
    for (auto& s : services_) s->Stop();
    ShardFaultTest::TearDown();
  }

  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::vector<std::unique_ptr<service::QueryService>> services_;
  std::unique_ptr<ShardedEngine> sharded_;
};

// Server-side failure: the shard's engine rejects the submit, the
// service returns a structured error line, and StatusFromWire carries
// the code back into the slice — across the TCP boundary.
TEST_F(ShardLoopbackFaultTest, ServerSideErrorPropagatesCode) {
  failpoint::Action a;
  a.code = StatusCode::kUnavailable;
  a.message = "injected server fault";
  a.once = true;
  failpoint::Arm("engine.submit", a);

  auto out = sharded_->Submit(spec_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->partial);
  size_t failed = 0;
  for (const auto& slice : out->shards) {
    if (!slice.ok) {
      ++failed;
      EXPECT_EQ(slice.error_code, "Unavailable");
    }
  }
  EXPECT_EQ(failed, 1u);

  failpoint::DisarmAll();
  auto again = sharded_->Submit(spec_);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->partial);
  EXPECT_EQ(again->answers, full_);
}

// Mid-gather drain over loopback: both shards answered over TCP, the
// coordinator drops one slice while merging. The next query is served
// complete from the (unpoisoned) shard caches.
TEST_F(ShardLoopbackFaultTest, MidGatherDrainOverLoopback) {
  auto warm = sharded_->Submit(spec_);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->answers, full_);

  failpoint::Action a;
  a.code = StatusCode::kUnavailable;
  a.message = "injected gather drain";
  a.once = true;
  failpoint::Arm("shard.gather", a);

  auto out = sharded_->Submit(spec_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->partial);
  EXPECT_FALSE(out->shards[0].ok);
  EXPECT_EQ(out->answers, SetIntersection(out->answers, full_));

  failpoint::DisarmAll();
  auto again = sharded_->Submit(spec_);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->partial);
  EXPECT_EQ(again->answers, full_);
}

}  // namespace
}  // namespace qgp
