// Pinned regression: a match sitting in the OVERLAP of two fragments'
// border balls must be reported exactly once by the sharded engine, and
// a counting quantifier (>= p) whose witness edges cross the cut must
// not double-count. The partition is hand-built (not DPar) so the
// overlap topology is pinned: both fragments replicate the paper's
// Fig. 2 G1 hub (Redmi 2A) and the shared followee v2, the focus
// candidates are split across the two fragments' owned sets, and the
// replicated region is large enough that a buggy "evaluate everything
// local" shard would report the same focus from both sides.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/query_engine.h"
#include "graph/graph_algorithms.h"
#include "parallel/partition.h"
#include "shard/sharded_engine.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

using shard::ShardedEngine;
using shard::ShardedOptions;

// Builds one fragment that owns `owned` and replicates every owned
// vertex's d-hop ball (the minimal local graph Validate accepts).
Fragment MakeFragment(const Graph& g, std::vector<VertexId> owned, int d) {
  std::vector<VertexId> region;
  for (VertexId v : owned) {
    std::vector<VertexId> ball = KHopBall(g, v, d);
    region.insert(region.end(), ball.begin(), ball.end());
  }
  std::sort(region.begin(), region.end());
  region.erase(std::unique(region.begin(), region.end()), region.end());
  Fragment f;
  f.sub = std::move(ExtractInducedSubgraph(g, region)).value();
  std::sort(owned.begin(), owned.end());
  f.owned_global = owned;
  for (VertexId v : owned) f.owned_local.push_back(f.sub.global_to_local.at(v));
  return f;
}

Partition MakeTwoFragmentPartition(const Graph& g,
                                   std::vector<VertexId> owned0,
                                   std::vector<VertexId> owned1, int d) {
  Partition p;
  p.d = d;
  p.base_region.assign(g.num_vertices(), 0);
  for (VertexId v : owned1) p.base_region[v] = 1;
  p.fragments.push_back(MakeFragment(g, std::move(owned0), d));
  p.fragments.push_back(MakeFragment(g, std::move(owned1), d));
  return p;
}

// Asserts each answer appears in exactly one shard slice — duplicates
// would survive neither the merged set (Canonicalize dedups) nor this
// check, so this is the assertion that actually pins exactly-once.
void ExpectDisjointSlices(const shard::ShardedOutcome& out) {
  std::vector<VertexId> all;
  for (const auto& slice : out.shards) {
    ASSERT_TRUE(slice.ok);
    all.insert(all.end(), slice.answers.begin(), slice.answers.end());
  }
  std::vector<VertexId> uniq = all;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_EQ(all.size(), uniq.size())
      << "an answer was reported by more than one shard";
}

class ShardBorderDedupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::BuildG1(&ids_);
    // Split the focus candidates across the cut: fragment 0 owns x1, x2
    // and the early followees; fragment 1 owns x3, the rest, and the
    // hub. d = 2 covers the xo -> z -> redmi pattern radius.
    partition_ = MakeTwoFragmentPartition(
        graph_, {ids_.x1, ids_.x2, ids_.v0, ids_.v1},
        {ids_.x3, ids_.v2, ids_.v3, ids_.v4, ids_.redmi}, /*d=*/2);
    ASSERT_TRUE(partition_.Validate(graph_).ok());

    // Pinned overlap precondition: the shared followee v2 and the hub
    // are replicated in BOTH fragments (x2 follows v2 but fragment 1
    // owns it; everything recommends the hub). If a refactor shrinks
    // the replication so this stops holding, the test is no longer
    // exercising dedup and must be rebuilt.
    for (const Fragment& f : partition_.fragments) {
      EXPECT_TRUE(f.sub.global_to_local.count(ids_.v2) == 1);
      EXPECT_TRUE(f.sub.global_to_local.count(ids_.redmi) == 1);
    }
  }

  Result<shard::ShardedOutcome> Run(const Pattern& pattern) {
    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.d = 2;
    sopts.engine.num_threads = 1;
    auto sharded =
        ShardedEngine::Create(graph_, partition_, sopts);  // copies
    if (!sharded.ok()) return sharded.status();
    QuerySpec spec;
    spec.pattern = pattern;
    auto out = (*sharded)->Submit(spec);
    if (out.ok()) ExpectDisjointSlices(*out);
    return out;
  }

  Graph graph_;
  testing::G1Ids ids_;
  Partition partition_;
};

// Q2 (universal follow -> recom): the paper's Example 4 answer is
// {x1, x2}. Both foci are owned by fragment 0, but x2's witnesses
// (v1, v2, redmi) straddle the cut — v2 and redmi live in fragment 1's
// base. Exactly once, and identical to the whole-graph engine.
TEST_F(ShardBorderDedupTest, UniversalAcrossCutExactlyOnce) {
  Pattern q2 = testing::BuildQ2(graph_.mutable_dict());
  auto out = Run(q2);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->answers, (AnswerSet{ids_.x1, ids_.x2}));

  QueryEngine single(&graph_);
  QuerySpec spec;
  spec.pattern = q2;
  auto want = single.Submit(spec);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(out->answers, want->answers);
}

// Q3's positive part with >= 2: Π(Q3)(xo, G1) = {x2, x3} (Example 7).
// x2 and x3 are owned by DIFFERENT fragments, and x3's three follow
// edges land on v2/v3/v4 whose recom/bad_rating edges converge on the
// replicated hub. A double-count of the >= 2 follow quantifier across
// the cut (or an unowned-focus leak) changes this answer set.
TEST_F(ShardBorderDedupTest, CountingQuantifierAcrossCutNotDoubleCounted) {
  Pattern q3 = testing::BuildQ3(graph_.mutable_dict(), /*p=*/2);
  auto out = Run(q3);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Full Q3 (with the negated bad-rating branch) keeps only x2.
  EXPECT_EQ(out->answers, (AnswerSet{ids_.x2}));

  QueryEngine single(&graph_);
  QuerySpec spec;
  spec.pattern = q3;
  auto want = single.Submit(spec);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(out->answers, want->answers);

  // Per-slice attribution is pinned too: the x2 answer must come from
  // its owner (fragment 0), never from fragment 1's replica.
  ASSERT_EQ(out->shards.size(), 2u);
  EXPECT_EQ(out->shards[0].answers, (AnswerSet{ids_.x2}));
  EXPECT_TRUE(out->shards[1].answers.empty());
}

// Raising the threshold to >= 3 flips x2 out (it follows only two
// people) while x3 still passes the count but fails the negation — the
// count across the cut is exact in both directions, not just "at least
// once".
TEST_F(ShardBorderDedupTest, CountingThresholdExactAcrossCut) {
  Pattern q3 = testing::BuildQ3(graph_.mutable_dict(), /*p=*/3);
  auto out = Run(q3);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  QueryEngine single(&graph_);
  QuerySpec spec;
  spec.pattern = q3;
  auto want = single.Submit(spec);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(out->answers, want->answers);
  EXPECT_TRUE(std::find(out->answers.begin(), out->answers.end(), ids_.x2) ==
              out->answers.end());
}

}  // namespace
}  // namespace qgp
