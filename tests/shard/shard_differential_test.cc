// Shard differential harness: a ShardedEngine at shard counts {1, 2, 4}
// must be ANSWER-identical to a single QueryEngine over the same graph
// for every algo family (qmatch / qmatchn / enum / pqmatch / penum and
// the auto planner), across randomized graph/pattern pairs, and must
// STAY identical after randomized delta batches routed through the
// coordinator (apply-to-shards ≡ apply-to-single). Work-counter
// identity is asserted on the pristine partition against the
// single-engine parallel families over the same DPar config — a shard
// evaluating its fragment's owned foci is exactly one PQMatch/PEnum
// worker, so the summed non-scheduler MatchStats must match to the
// counter. (Post-delta the routed fragments legitimately diverge from a
// fresh partition — stale replicas are kept — so only answers are
// asserted there; invariants I1-I3 keep them exact.)

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "graph/graph_delta.h"
#include "shard/sharded_engine.h"

namespace qgp {
namespace {

using shard::ShardedEngine;
using shard::ShardedOptions;
using shard::ShardedOutcome;

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 60;
  gc.num_edges = 170;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.model = (seed % 2 == 0) ? SyntheticConfig::Model::kSmallWorld
                             : SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

std::vector<VertexId> AliveVertices(const Graph& g) {
  std::vector<VertexId> alive;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_label(v) != kInvalidLabel) alive.push_back(v);
  }
  return alive;
}

// Random delta in NAMED form — the coordinator resolves labels against
// its master dict and cuts per-shard sub-deltas from the result.
NamedGraphDelta RandomNamedDelta(const Graph& g, std::mt19937* rng,
                                 size_t ops) {
  NamedGraphDelta d;
  std::vector<VertexId> alive = AliveVertices(g);
  auto rand_vertex = [&]() { return alive[(*rng)() % alive.size()]; };
  for (size_t i = 0; i < ops; ++i) {
    switch ((*rng)() % 8) {
      case 0:
        d.add_vertices.push_back("nl" + std::to_string((*rng)() % 4));
        break;
      case 1:
        d.remove_vertices.push_back(rand_vertex());
        break;
      case 2:
      case 3: {
        VertexId v = rand_vertex();
        auto nbrs = g.OutNeighbors(v);
        if (nbrs.empty()) break;
        const Neighbor& nbr = nbrs[(*rng)() % nbrs.size()];
        d.remove_edges.push_back({v, nbr.v, g.dict().Name(nbr.label)});
        break;
      }
      default:
        d.add_edges.push_back({rand_vertex(), rand_vertex(),
                               "el" + std::to_string((*rng)() % 3)});
        break;
    }
  }
  return d;
}

// Mixed workload rotating through every algo family plus auto. Only
// radius <= d patterns are kept (larger radii are rejected by the
// coordinator and the parallel families alike) and only specs the
// single engine can evaluate (both sides would fail identically).
std::vector<QuerySpec> MakeWorkload(const Graph& g, uint64_t seed, int d) {
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.num_negated = seed % 2;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 8, pc, seed * 13 + 1);
  const EngineAlgo algos[] = {EngineAlgo::kQMatch,  EngineAlgo::kQMatchn,
                              EngineAlgo::kEnum,    EngineAlgo::kPQMatch,
                              EngineAlgo::kPEnum,   EngineAlgo::kAuto};
  EngineOptions probe_opts;
  probe_opts.num_threads = 2;
  QueryEngine probe(&g, probe_opts);
  std::vector<QuerySpec> workload;
  for (size_t i = 0; i < suite.size(); ++i) {
    if (suite[i].Radius() > d) continue;
    QuerySpec spec;
    spec.pattern = std::move(suite[i]);
    spec.algo = algos[workload.size() % 6];
    spec.options.max_isomorphisms = 2'000'000;
    spec.tag = "q" + std::to_string(i);
    if (!probe.Submit(spec).ok()) continue;
    workload.push_back(std::move(spec));
  }
  return workload;
}

void ExpectSameWork(const MatchStats& a, const MatchStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << context;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << context;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << context;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << context;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << context;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << context;
  EXPECT_EQ(a.inc_candidates_checked, b.inc_candidates_checked) << context;
  EXPECT_EQ(a.balls_built, b.balls_built) << context;
}

// One (seed, shard count) sweep. *pairs counts evaluated graph/pattern
// pairs so the top-level test can assert the >= 64 coverage floor.
void RunSweep(uint64_t seed, size_t num_shards, size_t* pairs) {
  const int d = 2;
  Graph base = MakeGraph(seed);
  std::vector<QuerySpec> workload = MakeWorkload(base, seed, d);
  ASSERT_FALSE(workload.empty());

  ShardedOptions sopts;
  sopts.num_shards = num_shards;
  sopts.d = d;
  sopts.engine.num_threads = 2;
  auto sharded = ShardedEngine::Create(base, sopts);  // copy of base
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ((*sharded)->num_shards(), num_shards);

  EngineOptions ref_opts;
  ref_opts.num_threads = 2;
  ref_opts.partition_fragments = num_shards;
  ref_opts.partition_d = d;
  QueryEngine reference(base, ref_opts);  // same content, single engine

  for (const QuerySpec& spec : workload) {
    const std::string context = "seed " + std::to_string(seed) + " shards " +
                                std::to_string(num_shards) + " " + spec.tag;
    auto got = (*sharded)->Submit(spec);
    auto want = reference.Submit(spec);
    ASSERT_EQ(got.ok(), want.ok())
        << context << " "
        << (got.ok() ? want.status().ToString() : got.status().ToString());
    if (!got.ok()) continue;
    ++*pairs;
    EXPECT_EQ(got->answers, want->answers) << context;
    EXPECT_FALSE(got->partial) << context;
    EXPECT_EQ(got->shards.size(), num_shards) << context;

    // Work identity on the pristine partition: a sharded qmatch/enum IS
    // the matching parallel family over the same DPar config, shard by
    // shard, so the summed counters must agree exactly.
    std::optional<EngineAlgo> parallel_twin;
    if (spec.algo == EngineAlgo::kQMatch) parallel_twin = EngineAlgo::kPQMatch;
    if (spec.algo == EngineAlgo::kEnum) parallel_twin = EngineAlgo::kPEnum;
    if (parallel_twin.has_value()) {
      QuerySpec twin = spec;
      twin.algo = parallel_twin;
      twin.share_cache = false;
      auto twin_run = reference.Submit(twin);
      ASSERT_TRUE(twin_run.ok()) << context;
      EXPECT_EQ(got->answers, twin_run->answers) << context;
      ExpectSameWork(got->stats, twin_run->stats, context);
    }
  }

  // Delta phase: route the same batches through both sides. Answers
  // must stay identical (the routed fragments keep every owned d-hop
  // ball exact); work counters may drift (stale replicas are kept, a
  // fresh partition would place balls differently).
  std::mt19937 rng(seed * 101 + num_shards);
  QueryEngine mutated(base, ref_opts);  // owning single-engine twin
  for (int batch = 0; batch < 3; ++batch) {
    NamedGraphDelta delta = RandomNamedDelta(mutated.graph(), &rng,
                                             1 + rng() % 5);
    auto to_shards = (*sharded)->ApplyDelta(delta);
    auto to_single = mutated.ApplyDelta(delta);
    ASSERT_EQ(to_shards.ok(), to_single.ok())
        << "seed " << seed << " shards " << num_shards << " batch " << batch;
    if (!to_shards.ok()) continue;
    EXPECT_EQ((*sharded)->graph_version(), mutated.graph_version());
    ASSERT_TRUE(ContentEquals((*sharded)->graph(), mutated.graph()));

    for (const QuerySpec& spec : workload) {
      const std::string context = "seed " + std::to_string(seed) + " shards " +
                                  std::to_string(num_shards) + " batch " +
                                  std::to_string(batch) + " " + spec.tag;
      auto got = (*sharded)->Submit(spec);
      auto want = mutated.Submit(spec);
      ASSERT_EQ(got.ok(), want.ok()) << context;
      if (!got.ok()) continue;
      ++*pairs;
      EXPECT_EQ(got->answers, want->answers) << context;
    }
  }
}

TEST(ShardDifferential, ShardCountsMatchSingleEngine) {
  size_t pairs = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (size_t shards : {1u, 2u, 4u}) {
      RunSweep(seed, shards, &pairs);
    }
  }
  // The coverage floor from the issue: >= 64 randomized graph/pattern
  // pairs differentially checked (pre- and post-delta evaluations both
  // count — each is a full sharded-vs-single comparison).
  EXPECT_GE(pairs, 64u);
}

// Ownership never double-reports or drops: the per-shard owned counts
// always sum to |V| (alive or tombstoned — ownership follows ids), and
// every slice's answers are disjoint by construction.
TEST(ShardDifferential, OwnershipPartitionsVertices) {
  Graph g = MakeGraph(5);
  for (size_t shards : {1u, 2u, 4u}) {
    ShardedOptions sopts;
    sopts.num_shards = shards;
    sopts.engine.num_threads = 1;
    auto sharded = ShardedEngine::Create(g, sopts);
    ASSERT_TRUE(sharded.ok());
    size_t total = 0;
    for (size_t c : (*sharded)->OwnedCounts()) total += c;
    EXPECT_EQ(total, g.num_vertices());
  }
}

// A pattern whose radius exceeds the serving depth is rejected up
// front with the same error shape as the parallel families.
TEST(ShardDifferential, RejectsOverRadiusPatterns) {
  Graph g = MakeGraph(3);
  ShardedOptions sopts;
  sopts.num_shards = 2;
  sopts.d = 1;
  sopts.engine.num_threads = 1;
  auto sharded = ShardedEngine::Create(g, sopts);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  PatternGenConfig pc;
  pc.num_nodes = 5;
  pc.num_edges = 4;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 8, pc, 17);
  bool exercised = false;
  for (Pattern& p : suite) {
    if (p.Radius() <= 1) continue;
    QuerySpec spec;
    spec.pattern = std::move(p);
    auto r = (*sharded)->Submit(spec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    exercised = true;
    break;
  }
  EXPECT_TRUE(exercised) << "suite produced no radius > 1 pattern";
}

}  // namespace
}  // namespace qgp
