// Serialization fuzz/property suite for the shard wire boundary. The
// sharded coordinator reuses the service codec verbatim (patterns as
// DSL text, MatchOptions/answers/MatchStats/deltas as JSON lines), so
// the properties asserted here are exactly what shard transport relies
// on:
//
//  1. Round-trip identity for every wire type, checked re-encode
//     against re-encode (EncodeX(DecodeX(EncodeX(v))) == EncodeX(v)) —
//     a full-fidelity comparison no hand-written field list can rot
//     away from — over randomized values.
//  2. Every malformed or truncated frame decodes to a structured
//     InvalidArgument: never a crash, never a half-decoded request.
//  3. Over a live loopback service, a malformed frame gets a
//     structured error line and the SAME connection keeps answering —
//     a garbage line from one shard client cannot wedge the transport.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/pattern_parser.h"
#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/query_service.h"

namespace qgp::service {
namespace {

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 40;
  gc.num_edges = 110;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

// ---- property: randomized request round-trips ------------------------

ServiceRequest RandomQueryRequest(std::mt19937* rng) {
  ServiceRequest r;
  r.op = ServiceRequest::Op::kQuery;
  r.pattern_text = "node a nl" + std::to_string((*rng)() % 4) +
                   "\nnode b nl" + std::to_string((*rng)() % 4) +
                   "\nedge a b el0 >=" + std::to_string(1 + (*rng)() % 5) +
                   "\nfocus a\n";
  switch ((*rng)() % 7) {
    case 0: r.algo = EngineAlgo::kQMatch; break;
    case 1: r.algo = EngineAlgo::kQMatchn; break;
    case 2: r.algo = EngineAlgo::kEnum; break;
    case 3: r.algo = EngineAlgo::kPQMatch; break;
    case 4: r.algo = EngineAlgo::kPEnum; break;
    case 5: r.algo = EngineAlgo::kAuto; break;
    default: break;  // unset: engine default
  }
  r.options.use_simulation = (*rng)() % 2 == 0;
  r.options.use_quantifier_pruning = (*rng)() % 2 == 0;
  r.options.use_potential_ordering = (*rng)() % 2 == 0;
  r.options.early_stop_counting = (*rng)() % 2 == 0;
  r.options.use_incremental_negation = (*rng)() % 2 == 0;
  r.options.max_quantified_per_path = 1 + (*rng)() % 4;
  r.options.max_isomorphisms = (*rng)() % 1000000;
  r.options.ball_limit = (*rng)() % 10000;
  r.options.scheduler_grain = (*rng)() % 64;
  r.share_cache = (*rng)() % 2 == 0;
  r.timeout_ms = (*rng)() % 100000;
  r.tag = "t" + std::to_string((*rng)() % 1000);
  return r;
}

ServiceRequest RandomDeltaRequest(std::mt19937* rng, bool with_own) {
  ServiceRequest r;
  r.op = ServiceRequest::Op::kDelta;
  const size_t ops = 1 + (*rng)() % 6;
  for (size_t i = 0; i < ops; ++i) {
    switch ((*rng)() % 4) {
      case 0:
        r.delta.add_vertices.push_back("nl" + std::to_string((*rng)() % 4));
        break;
      case 1:
        r.delta.remove_vertices.push_back((*rng)() % 64);
        break;
      case 2:
        r.delta.add_edges.push_back({static_cast<VertexId>((*rng)() % 64),
                                     static_cast<VertexId>((*rng)() % 64),
                                     "el" + std::to_string((*rng)() % 3)});
        break;
      default:
        r.delta.remove_edges.push_back({static_cast<VertexId>((*rng)() % 64),
                                        static_cast<VertexId>((*rng)() % 64),
                                        "el" + std::to_string((*rng)() % 3)});
        break;
    }
  }
  if (with_own) {
    const size_t n = 1 + (*rng)() % 5;
    for (size_t i = 0; i < n; ++i) r.own.push_back((*rng)() % 128);
  }
  r.tag = "d" + std::to_string((*rng)() % 1000);
  return r;
}

TEST(ShardWireFuzz, QueryRequestsRoundTripExactly) {
  std::mt19937 rng(11);
  for (int i = 0; i < 200; ++i) {
    ServiceRequest r = RandomQueryRequest(&rng);
    const std::string line = EncodeRequest(r);
    auto decoded = DecodeRequest(line);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << line;
    EXPECT_EQ(EncodeRequest(*decoded), line);
  }
}

TEST(ShardWireFuzz, DeltaRequestsWithOwnRoundTripExactly) {
  std::mt19937 rng(12);
  for (int i = 0; i < 200; ++i) {
    ServiceRequest r = RandomDeltaRequest(&rng, /*with_own=*/i % 2 == 0);
    const std::string line = EncodeRequest(r);
    auto decoded = DecodeRequest(line);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << line;
    EXPECT_EQ(decoded->own, r.own);
    EXPECT_EQ(EncodeRequest(*decoded), line);
  }
}

// ---- property: pattern DSL round-trip (the scatter payload) ----------

// The coordinator serializes once against the master dict; each shard
// re-parses against its own. The invariant that makes that sound:
// Serialize∘Parse is the identity on serialized text, whatever dict the
// parse interns into.
TEST(ShardWireFuzz, PatternTextRoundTripsThroughForeignDict) {
  Graph g = MakeGraph(31);
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 2;
  pc.num_negated = 1;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 24, pc, 5);
  ASSERT_FALSE(suite.empty());
  for (const Pattern& p : suite) {
    const std::string text = PatternParser::Serialize(p, g.dict());
    LabelDict foreign;  // a shard's dict: different ids, same names
    foreign.Intern("unrelated-padding");
    auto reparsed = PatternParser::Parse(text, foreign);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
    EXPECT_EQ(PatternParser::Serialize(*reparsed, foreign), text);
  }
}

// ---- property: responses and MatchStats ------------------------------

MatchStats RandomStats(std::mt19937* rng) {
  // Round-trip fidelity is asserted by re-encoding, so values just need
  // to be distinctive; a real engine run then covers scheduler fields.
  MatchStats s;
  s.isomorphisms_enumerated = (*rng)();
  s.witness_searches = (*rng)();
  s.search_extensions = (*rng)();
  s.candidates_initial = (*rng)();
  s.candidates_pruned = (*rng)();
  s.focus_candidates_checked = (*rng)();
  s.inc_candidates_checked = (*rng)();
  s.balls_built = (*rng)();
  return s;
}

TEST(ShardWireFuzz, MatchStatsJsonRoundTripsExactly) {
  std::mt19937 rng(13);
  for (int i = 0; i < 100; ++i) {
    MatchStats s = RandomStats(&rng);
    auto back = MatchStatsFromJson(MatchStatsToJson(s));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(MatchStatsToJson(*back).Dump(), MatchStatsToJson(s).Dump());
  }
  // Engine-produced stats (scheduler telemetry populated) too.
  Graph g = MakeGraph(17);
  QueryEngine engine(&g);
  PatternGenConfig pc;
  pc.num_nodes = 3;
  pc.num_edges = 3;
  for (Pattern& p : GeneratePatternSuite(g, 6, pc, 9)) {
    QuerySpec spec;
    spec.pattern = std::move(p);
    auto out = engine.Submit(spec);
    if (!out.ok()) continue;
    auto back = MatchStatsFromJson(MatchStatsToJson(out->stats));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(MatchStatsToJson(*back).Dump(), MatchStatsToJson(out->stats).Dump());
  }
}

TEST(ShardWireFuzz, QueryResponsesRoundTripExactly) {
  std::mt19937 rng(14);
  for (int i = 0; i < 100; ++i) {
    QueryOutcome outcome;
    const size_t n = rng() % 16;
    for (size_t k = 0; k < n; ++k) outcome.answers.push_back(rng() % 500);
    Canonicalize(outcome.answers);
    outcome.stats = RandomStats(&rng);
    outcome.wall_ms = (rng() % 100000) / 16.0;  // dyadic: exact in JSON
    outcome.algo = static_cast<EngineAlgo>(rng() % 5);
    outcome.plan_cache_hit = rng() % 2 == 0;
    outcome.cache_hits = rng() % 100;
    outcome.cache_misses = rng() % 100;
    outcome.result_cache_hit = rng() % 2 == 0;
    outcome.delta_repaired = rng() % 2 == 0;
    outcome.tag = "q" + std::to_string(rng() % 100);
    const std::string line = EncodeQueryResponse(outcome);
    auto decoded = DecodeResponse(line);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << line;
    ASSERT_TRUE(decoded->ok);
    EXPECT_EQ(decoded->answers, outcome.answers);
    EXPECT_EQ(decoded->tag, outcome.tag);
    EXPECT_EQ(decoded->algo, EngineAlgoName(outcome.algo));
    EXPECT_EQ(MatchStatsToJson(decoded->stats).Dump(),
              MatchStatsToJson(outcome.stats).Dump());
  }
}

TEST(ShardWireFuzz, DeltaAndErrorResponsesRoundTrip) {
  std::mt19937 rng(15);
  for (int i = 0; i < 50; ++i) {
    DeltaOutcome d;
    d.graph_version = rng() % 1000;
    d.vertices_added = rng() % 50;
    d.vertices_removed = rng() % 50;
    d.edges_added = rng() % 50;
    d.edges_removed = rng() % 50;
    d.candidate_sets_evicted = rng() % 50;
    d.results_invalidated = rng() % 50;
    d.plans_invalidated = rng() % 50;
    d.partition_invalidated = rng() % 2 == 0;
    auto decoded = DecodeResponse(EncodeDeltaResponse(d, "dl"));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(decoded->ok);
    EXPECT_EQ(decoded->op, "delta");
    EXPECT_EQ(decoded->graph_version, d.graph_version);
    EXPECT_EQ(decoded->tag, "dl");
  }
  // Error responses: the leg StatusFromWire rides on. Every code the
  // shard boundary can produce must survive the trip by name.
  const Status errors[] = {
      Status::InvalidArgument("boom"), Status::NotFound("boom"),
      Status::AlreadyExists("boom"),   Status::OutOfRange("boom"),
      Status::Unimplemented("boom"),   Status::Internal("boom"),
      Status::IoError("boom"),         Status::Corruption("boom"),
      Status::Unavailable("boom"),     Status::DeadlineExceeded("boom"),
      Status::Cancelled("boom")};
  for (const Status& err : errors) {
    auto decoded = DecodeResponse(
        EncodeErrorResponse(ServiceRequest::Op::kQuery, err, "e1"));
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(decoded->ok);
    EXPECT_EQ(decoded->error_code, StatusCodeName(err.code()));
    EXPECT_EQ(decoded->error_message, "boom");
  }
}

// ---- malformed and truncated frames ----------------------------------

TEST(ShardWireFuzz, MalformedFramesAreStructuredErrors) {
  const char* bad[] = {
      "",                                              // empty frame
      "\x01\x02\x7f",                                  // binary junk
      "{",                                             // truncated object
      "{}",                                            // no op, no pattern
      "[]",                                            // wrong root type
      "null",                                          // wrong root type
      "\"query\"",                                     // wrong root type
      R"({"op":"query"})",                             // missing pattern
      R"({"op":"delta","pattern":"p"})",               // pattern on delta
      R"({"op":"query","pattern":"p","own":[1]})",     // own on non-delta
      R"({"op":"stats","own":[1]})",                   // own on non-delta
      R"({"op":"delta","add_edges":[[1,2]]})",         // arity-2 edge
      R"({"op":"delta","add_edges":[[1,2,"el0",9]]})", // arity-4 edge
      R"({"op":"delta","own":"7"})",                   // own wrong type
      R"({"op":"delta","own":[-1]})",                  // negative id
      R"({"op":"delta","own":[1.5]})",                 // fractional id
      R"({"op":"delta","own":[[1]]})",                 // nested array id
      R"({"op":"delta","remove_vertices":[1],"own":[1],"extra":0})",
      R"({"pattern":"p","timeout_ms":"soon"})",        // wrong type
      R"({"pattern":"p","timeout_ms":-5})",            // negative deadline
      R"({"pattern":"p","options":[]})",               // options not object
      R"({"pattern":"p","options":{"cancel":true}})",  // unknown option
      R"({"pattern":"p"} trailing)",                   // trailing junk
  };
  size_t cases = 0;
  for (const char* line : bad) {
    auto decoded = DecodeRequest(line);
    ASSERT_FALSE(decoded.ok()) << "accepted: " << line;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << line;
    ++cases;
  }
  EXPECT_GE(cases, 20u);
}

// Every proper prefix of a valid frame is a truncated frame, and every
// one must decode to InvalidArgument (the codec never guesses at a cut
// line). This sweeps hundreds of truncation points per seed.
TEST(ShardWireFuzz, TruncatedFramesAreRejectedAtEveryCut) {
  std::mt19937 rng(16);
  for (int i = 0; i < 8; ++i) {
    ServiceRequest r =
        i % 2 == 0 ? RandomQueryRequest(&rng) : RandomDeltaRequest(&rng, true);
    const std::string line = EncodeRequest(r);
    ASSERT_TRUE(DecodeRequest(line).ok());
    for (size_t cut = 0; cut < line.size(); ++cut) {
      auto decoded = DecodeRequest(std::string_view(line).substr(0, cut));
      ASSERT_FALSE(decoded.ok())
          << "accepted a " << cut << "-byte prefix of: " << line;
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

// ---- live loopback: garbage never wedges the connection --------------

TEST(ShardWireFuzz, MalformedLinesDoNotWedgeLiveConnection) {
  Graph g = MakeGraph(23);
  QueryEngine engine(&g);
  ServiceOptions sopts;
  sopts.port = 0;
  QueryService server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  PatternGenConfig pc;
  pc.num_nodes = 3;
  pc.num_edges = 2;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 4, pc, 3);
  ASSERT_FALSE(suite.empty());
  ServiceRequest good;
  good.pattern_text = PatternParser::Serialize(suite[0], g.dict());
  good.tag = "ok";

  const char* garbage[] = {
      "not json",
      "{\"op\":\"query\"}",
      "{\"op\":\"query\",\"pattern\":\"p\",\"own\":[1]}",
      "{\"op\":\"delta\",\"own\":[-1]}",
      "{\"pattern\":",
  };
  for (const char* line : garbage) {
    ASSERT_TRUE(client->SendLine(line).ok());
    auto resp = client->ReadResponse();
    ASSERT_TRUE(resp.ok()) << "connection dropped after: " << line;
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->error_code, "InvalidArgument") << line;

    // The very same connection answers the next well-formed request.
    auto answered = client->Call(good);
    ASSERT_TRUE(answered.ok()) << answered.status().ToString();
    EXPECT_TRUE(answered->ok) << answered->error_message;
    EXPECT_EQ(answered->tag, "ok");
  }
  // "own" on a delta against an engine with no focus subset is rejected
  // as a structured error too (the plain service stays strict).
  ServiceRequest own_delta;
  own_delta.op = ServiceRequest::Op::kDelta;
  own_delta.delta.add_vertices.push_back("nl0");
  own_delta.own.push_back(0);
  auto rejected = client->Call(own_delta);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected->ok);
  EXPECT_EQ(rejected->error_code, "InvalidArgument");
  auto still_alive = client->Call(good);
  ASSERT_TRUE(still_alive.ok());
  EXPECT_TRUE(still_alive->ok);

  client->Close();
  server.Stop();
}

}  // namespace
}  // namespace qgp::service
