#ifndef QGP_TESTS_TESTING_PAPER_GRAPHS_H_
#define QGP_TESTS_TESTING_PAPER_GRAPHS_H_

#include <cassert>

#include "core/pattern.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace qgp::testing {

/// Vertex ids of the paper's Fig. 2 G1 (social graph).
struct G1Ids {
  VertexId x1, x2, x3;          // focus candidates
  VertexId v0, v1, v2, v3, v4;  // followees
  VertexId redmi;               // the product
};

/// Fig. 2 G1: follow edges x1→{v0}, x2→{v1,v2}, x3→{v2,v3,v4};
/// recom edges v0..v3 → Redmi 2A; bad_rating edge v4 → Redmi 2A.
/// Matches Examples 3–7: Q2(xo,G1) = {x1,x2}; Π(Q3)(xo,G1) = {x2,x3}
/// (p = 2); Q3(xo,G1) = {x2}.
inline Graph BuildG1(G1Ids* ids = nullptr) {
  GraphBuilder b;
  G1Ids g;
  g.x1 = b.AddVertex("person");
  g.x2 = b.AddVertex("person");
  g.x3 = b.AddVertex("person");
  g.v0 = b.AddVertex("person");
  g.v1 = b.AddVertex("person");
  g.v2 = b.AddVertex("person");
  g.v3 = b.AddVertex("person");
  g.v4 = b.AddVertex("person");
  g.redmi = b.AddVertex("redmi_2a");
  (void)b.AddEdge(g.x1, g.v0, "follow");
  (void)b.AddEdge(g.x2, g.v1, "follow");
  (void)b.AddEdge(g.x2, g.v2, "follow");
  (void)b.AddEdge(g.x3, g.v2, "follow");
  (void)b.AddEdge(g.x3, g.v3, "follow");
  (void)b.AddEdge(g.x3, g.v4, "follow");
  (void)b.AddEdge(g.v0, g.redmi, "recom");
  (void)b.AddEdge(g.v1, g.redmi, "recom");
  (void)b.AddEdge(g.v2, g.redmi, "recom");
  (void)b.AddEdge(g.v3, g.redmi, "recom");
  (void)b.AddEdge(g.v4, g.redmi, "bad_rating");
  if (ids != nullptr) *ids = g;
  auto built = std::move(b).Build();
  assert(built.ok());
  return std::move(built).value();
}

/// Q2 (Fig. 1): xo -follow(=100%)-> z -recom-> Redmi 2A.
inline Pattern BuildQ2(LabelDict& dict) {
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = q.AddNode(dict.Intern("person"), "z");
  PatternNodeId r = q.AddNode(dict.Intern("redmi_2a"), "r");
  (void)q.AddEdge(xo, z, dict.Intern("follow"), Quantifier::Universal());
  (void)q.AddEdge(z, r, dict.Intern("recom"));
  (void)q.set_focus(xo);
  return q;
}

/// Q3 (Fig. 1): xo -follow(>=p)-> z1 -recom-> Redmi 2A, plus the negated
/// branch xo -follow(=0)-> z2 -bad_rating-> Redmi 2A, with the single
/// shared product node (G1 only has one Redmi 2A vertex, and matching is
/// injective). Π(Q3) still drops z2 AND its bad-rating edge — the
/// focus-far endpoint rule of Pi() reproduces Fig. 3.
inline Pattern BuildQ3(LabelDict& dict, uint32_t p) {
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z1 = q.AddNode(dict.Intern("person"), "z1");
  PatternNodeId z2 = q.AddNode(dict.Intern("person"), "z2");
  PatternNodeId r = q.AddNode(dict.Intern("redmi_2a"), "r");
  (void)q.AddEdge(xo, z1, dict.Intern("follow"),
                  Quantifier::Numeric(QuantOp::kGe, p));
  (void)q.AddEdge(z1, r, dict.Intern("recom"));
  (void)q.AddEdge(xo, z2, dict.Intern("follow"), Quantifier::Negation());
  (void)q.AddEdge(z2, r, dict.Intern("bad_rating"));
  (void)q.set_focus(xo);
  return q;
}

/// Vertex ids of the G2-style knowledge graph (inspired by Fig. 2 G2 —
/// the paper's prose fixes Q4's expected answers, not every edge, so the
/// construction here realizes the documented behaviour: x4 matches the
/// stratified pattern but has a PhD; x5, x6 are the answers at p = 2).
struct G2Ids {
  VertexId x4, x5, x6;              // professors in the UK
  VertexId v5, v6, v7, v8, v9;      // students
  VertexId prof, phd, uk, us;       // singleton entity nodes
};

inline Graph BuildG2(G2Ids* ids = nullptr) {
  GraphBuilder b;
  G2Ids g;
  g.x4 = b.AddVertex("person");
  g.x5 = b.AddVertex("person");
  g.x6 = b.AddVertex("person");
  g.v5 = b.AddVertex("person");
  g.v6 = b.AddVertex("person");
  g.v7 = b.AddVertex("person");
  g.v8 = b.AddVertex("person");
  g.v9 = b.AddVertex("person");
  g.prof = b.AddVertex("prof");
  g.phd = b.AddVertex("phd");
  g.uk = b.AddVertex("uk");
  g.us = b.AddVertex("us");
  // Focus candidates: professors in the UK.
  for (VertexId x : {g.x4, g.x5, g.x6}) {
    (void)b.AddEdge(x, g.prof, "is_a");
    (void)b.AddEdge(x, g.uk, "in");
  }
  // x4 holds a PhD (so Q4's negation excludes it); x5, x6 do not.
  (void)b.AddEdge(g.x4, g.phd, "is_a");
  // Students v5..v8 are UK professors; v9 is a US professor.
  for (VertexId v : {g.v5, g.v6, g.v7, g.v8}) {
    (void)b.AddEdge(v, g.prof, "is_a");
    (void)b.AddEdge(v, g.uk, "in");
  }
  (void)b.AddEdge(g.v9, g.prof, "is_a");
  (void)b.AddEdge(g.v9, g.us, "in");
  // Advisor lineages: x4 → {v5, v6, v9}; x5 → {v5, v6}; x6 → {v7, v8, v9}.
  // x4 satisfies the >=2 count (v5, v6) so only the PhD negation rules it
  // out, exactly as Example 4 describes.
  (void)b.AddEdge(g.x4, g.v5, "advisor");
  (void)b.AddEdge(g.x4, g.v6, "advisor");
  (void)b.AddEdge(g.x4, g.v9, "advisor");
  (void)b.AddEdge(g.x5, g.v5, "advisor");
  (void)b.AddEdge(g.x5, g.v6, "advisor");
  (void)b.AddEdge(g.x6, g.v7, "advisor");
  (void)b.AddEdge(g.x6, g.v8, "advisor");
  (void)b.AddEdge(g.x6, g.v9, "advisor");
  if (ids != nullptr) *ids = g;
  auto built = std::move(b).Build();
  assert(built.ok());
  return std::move(built).value();
}

/// Q4 (Fig. 1): find xo with (a) xo -is_a-> prof, (b) xo -in-> uk,
/// (c) xo -advisor(>=p)-> z where z -is_a-> prof and z -in-> uk, and
/// (d) the negation xo -is_a(=0)-> phd.
inline Pattern BuildQ4(LabelDict& dict, uint32_t p) {
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId prof = q.AddNode(dict.Intern("prof"), "prof");
  PatternNodeId uk = q.AddNode(dict.Intern("uk"), "uk");
  PatternNodeId z = q.AddNode(dict.Intern("person"), "z");
  PatternNodeId phd = q.AddNode(dict.Intern("phd"), "phd");
  (void)q.AddEdge(xo, prof, dict.Intern("is_a"));
  (void)q.AddEdge(xo, uk, dict.Intern("in"));
  (void)q.AddEdge(xo, z, dict.Intern("advisor"),
                  Quantifier::Numeric(QuantOp::kGe, p));
  (void)q.AddEdge(z, prof, dict.Intern("is_a"));
  (void)q.AddEdge(z, uk, dict.Intern("in"));
  (void)q.AddEdge(xo, phd, dict.Intern("is_a"), Quantifier::Negation());
  (void)q.set_focus(xo);
  return q;
}

}  // namespace qgp::testing

#endif  // QGP_TESTS_TESTING_PAPER_GRAPHS_H_
