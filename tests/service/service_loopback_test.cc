// Loopback differential suite for the network query service: a real
// QueryService on an ephemeral 127.0.0.1 port, driven by real
// ServiceClients. The headline contract: answers and MatchStats work
// counters that come back over the wire are identical to direct
// QueryEngine::RunBatch calls — under at least 4 concurrent client
// connections — so the network layer is a pure transport. Around it:
// malformed input gets structured errors without killing the
// connection, the per-client admission limit rejects while the engine
// is busy, the stats op answers while a long batch is mid-flight, and
// the shutdown op is honored only when enabled.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/pattern_parser.h"
#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "service/client.h"
#include "service/query_service.h"

namespace qgp::service {
namespace {

Graph MakeGraph(uint64_t seed, size_t vertices = 60) {
  SyntheticConfig gc;
  gc.num_vertices = vertices;
  gc.num_edges = vertices * 3;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

/// A mixed workload as wire requests: two pattern families, algorithms
/// rotating qmatch / qmatchn / enum, pattern text produced by the
/// parser's own serializer.
std::vector<ServiceRequest> MakeWorkload(Graph& g, uint64_t seed) {
  PatternGenConfig small;
  small.num_nodes = 4;
  small.num_edges = 4;
  small.num_quantified = 1;
  PatternGenConfig larger;
  larger.num_nodes = 5;
  larger.num_edges = 5;
  larger.num_quantified = 2;
  larger.num_negated = 1;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 4, small, seed * 3 + 1);
  std::vector<Pattern> b = GeneratePatternSuite(g, 3, larger, seed * 7 + 5);
  patterns.insert(patterns.end(), b.begin(), b.end());

  const EngineAlgo algos[] = {EngineAlgo::kQMatch, EngineAlgo::kQMatchn,
                              EngineAlgo::kEnum};
  std::vector<ServiceRequest> workload;
  for (size_t i = 0; i < patterns.size(); ++i) {
    ServiceRequest request;
    request.pattern_text = PatternParser::Serialize(patterns[i], g.dict());
    request.algo = algos[i % 3];
    request.options.max_isomorphisms = 2'000'000;
    request.tag = "q" + std::to_string(i);
    workload.push_back(std::move(request));
  }
  return workload;
}

/// The same workload as engine specs, parsed against the graph's own
/// dictionary — the reference side of the differential.
std::vector<QuerySpec> AsSpecs(const std::vector<ServiceRequest>& workload,
                               Graph& g) {
  std::vector<QuerySpec> specs;
  for (const ServiceRequest& request : workload) {
    QuerySpec spec;
    spec.pattern = std::move(PatternParser::Parse(request.pattern_text,
                                                  g.mutable_dict()))
                       .value();
    spec.algo = request.algo;
    spec.options = request.options;
    spec.tag = request.tag;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Work-counter identity modulo scheduler telemetry — the same
/// comparison the engine differential suite uses.
void ExpectSameWork(const MatchStats& a, const MatchStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << context;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << context;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << context;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << context;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << context;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << context;
  EXPECT_EQ(a.inc_candidates_checked, b.inc_candidates_checked) << context;
  EXPECT_EQ(a.balls_built, b.balls_built) << context;
}

// The headline differential: 4 concurrent client connections each
// replay the full workload; every response must be answer- and
// work-counter-identical to a direct RunBatch on a reference engine.
TEST(ServiceLoopbackTest, ConcurrentClientsMatchDirectEngineRuns) {
  Graph g = MakeGraph(11);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 11);
  std::vector<QuerySpec> specs = AsSpecs(workload, g);

  QueryEngine reference(&g, EngineOptions{});
  auto expected = reference.RunBatch(specs);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_EQ(expected->size(), workload.size());

  QueryEngine engine(&g, EngineOptions{});
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 4;
  std::vector<std::vector<ServiceResponse>> got(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ServiceClient::Connect(server.port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (const ServiceRequest& request : workload) {
        auto response = client->Call(request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        got[c].push_back(std::move(response).value());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), workload.size());
    for (size_t i = 0; i < got[c].size(); ++i) {
      const std::string context =
          "client " + std::to_string(c) + " " + workload[i].tag;
      EXPECT_TRUE(got[c][i].ok) << context << ": " << got[c][i].error_message;
      EXPECT_EQ(got[c][i].tag, workload[i].tag) << context;
      EXPECT_EQ(got[c][i].answers, (*expected)[i].answers) << context;
      ExpectSameWork(got[c][i].stats, (*expected)[i].stats, context);
    }
  }
  EXPECT_EQ(engine.stats().queries, kClients * workload.size());
  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.connections, kClients);
  EXPECT_EQ(stats.queries_ok, kClients * workload.size());
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.malformed, 0u);
  server.Stop();
}

// Responses on one connection come back in request order even when the
// whole workload is pipelined in a single burst.
TEST(ServiceLoopbackTest, PipelinedBurstKeepsRequestOrder) {
  Graph g = MakeGraph(23);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 23);

  QueryEngine engine(&g, EngineOptions{});
  ServiceOptions options;
  options.max_inflight_per_client = 0;  // the burst must not be shed
  QueryService server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (const ServiceRequest& request : workload) {
    ASSERT_TRUE(client->Send(request).ok());
  }
  for (const ServiceRequest& request : workload) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->ok) << response->error_message;
    EXPECT_EQ(response->tag, request.tag);  // strict request order
  }
  server.Stop();
}

// Malformed lines (bad JSON, unknown fields, bad pattern text, an
// oversized line) get structured InvalidArgument responses and the
// connection keeps working.
TEST(ServiceLoopbackTest, MalformedRequestsGetStructuredErrors) {
  Graph g = MakeGraph(31);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 31);
  QueryEngine engine(&g, EngineOptions{});
  ServiceOptions options;
  options.max_line_bytes = 4096;
  QueryService server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  const char* bad_lines[] = {
      "this is not json",
      R"({"op":"query"})",
      R"({"pattern":"p","bogus":1})",
      R"({"pattern":"no focus record","tag":"parse-me"})",
  };
  for (const char* line : bad_lines) {
    ASSERT_TRUE(client->SendLine(line).ok());
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok) << line;
    EXPECT_EQ(response->error_code, "InvalidArgument") << line;
  }
  // An oversized line is answered with an error as soon as the guard
  // trips, without buffering the rest.
  std::string huge = R"({"pattern":")" + std::string(8192, 'x') + R"("})";
  ASSERT_TRUE(client->SendLine(huge).ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, "InvalidArgument");

  // The connection survived all of it: a real query still answers.
  auto good = client->Call(workload[0]);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good->ok) << good->error_message;

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.malformed, 5u);
  EXPECT_EQ(stats.queries_ok, 1u);
  server.Stop();
}

// While a long batch occupies the engine: (a) the per-client in-flight
// limit rejects pipelined excess with "Unavailable", (b) the stats op
// on a second connection answers immediately instead of queueing behind
// the batch. Both are asserted *during* the busy window — the atomic
// flag proves the batch was still running.
TEST(ServiceLoopbackTest, BusyEngineShedsExcessAndStatsStaysResponsive) {
  Graph g = MakeGraph(47, /*vertices=*/400);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 47);
  std::vector<QuerySpec> specs = AsSpecs(workload, g);
  // A batch big enough for a comfortable busy window (~seconds): the
  // engine admission lock is held across the whole RunBatch.
  std::vector<QuerySpec> busy;
  for (int r = 0; r < 60; ++r) {
    busy.insert(busy.end(), specs.begin(), specs.end());
  }

  QueryEngine engine(&g, EngineOptions{});
  ServiceOptions options;
  options.max_inflight_per_client = 1;
  QueryService server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> batch_done{false};
  std::thread batch([&] {
    auto outcomes = engine.RunBatch(busy);
    EXPECT_TRUE(outcomes.ok());
    batch_done.store(true);
  });

  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto monitor = ServiceClient::Connect(server.port());
  ASSERT_TRUE(monitor.ok());

  // Pipeline 3 queries on one connection: the first takes the client's
  // only in-flight slot (it sits queued behind the batch), the other
  // two must be rejected immediately.
  for (int i = 0; i < 3; ++i) {
    ServiceRequest request = workload[0];
    request.tag = "burst-" + std::to_string(i);
    ASSERT_TRUE(client->Send(request).ok());
  }

  // The stats op answers while the engine is busy.
  ServiceRequest stats_request;
  stats_request.op = ServiceRequest::Op::kStats;
  auto stats_response = monitor->Call(stats_request);
  ASSERT_TRUE(stats_response.ok()) << stats_response.status().ToString();
  EXPECT_TRUE(stats_response->ok);
  EXPECT_FALSE(batch_done.load())
      << "batch finished before the stats probe - the busy window is too "
         "short for this machine; widen the batch";

  // Responses come back in request order: the admitted query's answer
  // (delivered once the batch drains) first, then the two rejections.
  auto first = client->ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->ok) << first->error_message;
  EXPECT_EQ(first->tag, "burst-0");
  for (int i = 1; i < 3; ++i) {
    auto shed = client->ReadResponse();
    ASSERT_TRUE(shed.ok());
    EXPECT_FALSE(shed->ok);
    EXPECT_EQ(shed->tag, "burst-" + std::to_string(i));
    EXPECT_EQ(shed->error_code, "Unavailable") << shed->error_message;
  }
  batch.join();
  EXPECT_EQ(server.stats().rejected, 2u);
  server.Stop();
}

// Patterns over labels the graph has never seen parse fine and match
// nothing — byte-identical semantics to an unlabeled miss, not an error.
TEST(ServiceLoopbackTest, UnknownLabelsMatchNothing) {
  Graph g = MakeGraph(53);
  QueryEngine engine(&g, EngineOptions{});
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());

  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ServiceRequest request;
  request.pattern_text =
      "node a made_up_label\nnode b other_novel_label\n"
      "edge a b unheard_of_edge\nfocus a\n";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok) << response->error_message;
  EXPECT_TRUE(response->answers.empty());
  server.Stop();
}

// The delta op end to end: a wire-delivered batch mutates the served
// graph (answers flip from the pre-delta to the post-delta reference),
// the response carries the bumped version and net counts, and labels
// the delta introduced are immediately usable in pattern text — the
// service re-snapshots its parse dictionary from the engine.
TEST(ServiceLoopbackTest, DeltaOpMutatesServedGraphAndInternsLabels) {
  Graph g = MakeGraph(67);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 67);
  const std::string label0 = g.dict().Name(g.vertex_label(0));
  const VertexId novel_id = g.num_vertices();

  // The batch: one brand-new node label and edge label, plus mutations
  // over existing labels (an edge rewire and a tombstone).
  NamedGraphDelta delta;
  delta.add_vertices = {"novel"};
  delta.add_edges.push_back({0, novel_id, "fresh_edge"});
  delta.add_edges.push_back({1, 2, "el0"});
  delta.remove_vertices.push_back(5);

  // Pre/post reference answers on local copies.
  Graph pre = g;
  Graph post = g;
  std::vector<QuerySpec> specs = AsSpecs(workload, pre);
  ASSERT_TRUE(post.ApplyDelta(ResolveDelta(delta, &post.mutable_dict())).ok());
  QueryEngine ref_pre(&pre, EngineOptions{});
  auto expected_pre = ref_pre.RunBatch(specs);
  ASSERT_TRUE(expected_pre.ok());
  QueryEngine ref_post(&post, EngineOptions{});
  auto expected_post = ref_post.RunBatch(specs);
  ASSERT_TRUE(expected_post.ok());

  // Deltas need an owning engine (a borrowed graph is read-only).
  QueryEngine engine(std::move(g), EngineOptions{});
  const uint64_t v0 = engine.graph_version();
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->Call(workload[i]);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->answers, (*expected_pre)[i].answers)
        << "pre-delta " << workload[i].tag;
  }

  ServiceRequest mutation;
  mutation.op = ServiceRequest::Op::kDelta;
  mutation.delta = delta;
  mutation.tag = "d-1";
  auto applied = client->Call(mutation);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_TRUE(applied->ok) << applied->error_message;
  EXPECT_EQ(applied->op, "delta");
  EXPECT_EQ(applied->tag, "d-1");
  EXPECT_EQ(applied->graph_version, v0 + 1);
  EXPECT_EQ(applied->body.Find("vertices_added")->as_number(), 1);
  EXPECT_EQ(applied->body.Find("vertices_removed")->as_number(), 1);
  EXPECT_EQ(applied->body.Find("edges_added")->as_number(), 2);

  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->Call(workload[i]);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->answers, (*expected_post)[i].answers)
        << "post-delta " << workload[i].tag;
  }

  // The delta's labels are already parseable: this pattern names a node
  // label and an edge label that did not exist at server start, and its
  // single answer is the rewired source vertex.
  ServiceRequest novel;
  novel.pattern_text = "node a " + label0 +
                       "\nnode b novel\nedge a b fresh_edge\nfocus a\n";
  auto response = client->Call(novel);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->error_message;
  EXPECT_EQ(response->answers, (AnswerSet{0}));

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.deltas_ok, 1u);
  EXPECT_EQ(stats.deltas_failed, 0u);
  EXPECT_EQ(stats.malformed, 0u);
  server.Stop();
}

// Delta failures are structured responses, not dropped connections: an
// invalid batch (out-of-range endpoint) reports InvalidArgument and
// leaves the graph untouched; a borrowing engine rejects every delta.
TEST(ServiceLoopbackTest, DeltaRejectionsAreStructured) {
  Graph g = MakeGraph(71);
  const size_t n = g.num_vertices();
  {
    QueryEngine engine(Graph(g), EngineOptions{});
    const uint64_t v0 = engine.graph_version();
    QueryService server(&engine, ServiceOptions{});
    ASSERT_TRUE(server.Start().ok());
    auto client = ServiceClient::Connect(server.port());
    ASSERT_TRUE(client.ok());

    ServiceRequest bad;
    bad.op = ServiceRequest::Op::kDelta;
    bad.delta.add_edges.push_back({static_cast<VertexId>(n + 100), 0, "el0"});
    bad.tag = "bad-endpoint";
    auto response = client->Call(bad);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->error_code, "InvalidArgument");
    EXPECT_EQ(response->tag, "bad-endpoint");
    EXPECT_EQ(engine.graph_version(), v0);  // untouched

    // The connection still works, and an empty batch is a legal no-op
    // that bumps the version.
    ServiceRequest noop;
    noop.op = ServiceRequest::Op::kDelta;
    auto applied = client->Call(noop);
    ASSERT_TRUE(applied.ok());
    EXPECT_TRUE(applied->ok) << applied->error_message;
    EXPECT_EQ(applied->graph_version, v0 + 1);

    const ServiceStats stats = server.stats();
    EXPECT_EQ(stats.deltas_ok, 1u);
    EXPECT_EQ(stats.deltas_failed, 1u);
    server.Stop();
  }
  {
    QueryEngine engine(&g, EngineOptions{});  // borrowing: read-only graph
    QueryService server(&engine, ServiceOptions{});
    ASSERT_TRUE(server.Start().ok());
    auto client = ServiceClient::Connect(server.port());
    ASSERT_TRUE(client.ok());
    ServiceRequest mutation;
    mutation.op = ServiceRequest::Op::kDelta;
    mutation.delta.add_vertices = {"novel"};
    auto response = client->Call(mutation);
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->error_code, "InvalidArgument");
    EXPECT_EQ(server.stats().deltas_failed, 1u);
    server.Stop();
  }
}

// The shutdown op: rejected when disabled (default), honored when the
// service opts in — Wait() returns and Stop() drains cleanly.
TEST(ServiceLoopbackTest, ShutdownOpIsGatedByOption) {
  Graph g = MakeGraph(59);
  QueryEngine engine(&g, EngineOptions{});
  {
    QueryService server(&engine, ServiceOptions{});
    ASSERT_TRUE(server.Start().ok());
    auto client = ServiceClient::Connect(server.port());
    ASSERT_TRUE(client.ok());
    ServiceRequest request;
    request.op = ServiceRequest::Op::kShutdown;
    auto response = client->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->error_code, "Unimplemented");
    server.Stop();
  }
  {
    ServiceOptions options;
    options.allow_shutdown = true;
    QueryService server(&engine, options);
    ASSERT_TRUE(server.Start().ok());
    auto client = ServiceClient::Connect(server.port());
    ASSERT_TRUE(client.ok());
    ServiceRequest request;
    request.op = ServiceRequest::Op::kShutdown;
    auto response = client->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok);
    EXPECT_EQ(response->op, "shutdown");
    server.Wait();  // signaled by the op; returns without Stop()
    server.Stop();
  }
}

// The delta-stall regression: a delta pipelined while the engine is
// busy must NOT block its connection's reader thread. The delta rides
// the dispatch queue (where ApplyDelta waits for the engine admission
// lock on a worker), so requests pipelined behind it are still read and
// processed — provable via the stats_requests counter advancing while
// the busy batch is mid-flight. With the old inline apply, the reader
// sat inside ApplyDelta and could read nothing until the engine freed
// up. Responses still leave in strict request order afterwards.
TEST(ServiceLoopbackTest, QueuedDeltaKeepsReaderResponsive) {
  Graph g = MakeGraph(83, /*vertices=*/400);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 83);
  std::vector<QuerySpec> specs = AsSpecs(workload, g);
  std::vector<QuerySpec> busy;
  for (int r = 0; r < 60; ++r) {
    busy.insert(busy.end(), specs.begin(), specs.end());
  }

  // Owning engine: deltas are legal. The wire delta is an empty batch —
  // a version-bumping no-op, so the concurrent busy batch's queries are
  // unaffected whenever the apply interleaves.
  QueryEngine engine(std::move(g), EngineOptions{});
  ServiceOptions options;
  options.max_inflight_per_client = 0;
  QueryService server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> batch_done{false};
  std::thread batch([&] {
    auto outcomes = engine.RunBatch(busy);
    EXPECT_TRUE(outcomes.ok());
    batch_done.store(true);
  });

  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  // One pipelined burst: the delta, then two stats probes behind it.
  ServiceRequest mutation;
  mutation.op = ServiceRequest::Op::kDelta;
  mutation.tag = "d-queued";
  ASSERT_TRUE(client->Send(mutation).ok());
  ServiceRequest probe;
  probe.op = ServiceRequest::Op::kStats;
  ASSERT_TRUE(client->Send(probe).ok());
  ASSERT_TRUE(client->Send(probe).ok());

  // The reader works through both probes although the delta ahead of
  // them has not been applied-and-answered yet (its response would
  // flush first — the probes' counters move long before any response).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().stats_requests < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().stats_requests, 2u)
      << "reader stalled behind the queued delta";
  EXPECT_FALSE(batch_done.load())
      << "batch finished before the probes were read - the busy window is "
         "too short for this machine; widen the batch";

  // Strict request order on the wire: delta response first, then the
  // two stats responses.
  auto applied = client->ReadResponse();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE(applied->ok) << applied->error_message;
  EXPECT_EQ(applied->op, "delta");
  EXPECT_EQ(applied->tag, "d-queued");
  for (int i = 0; i < 2; ++i) {
    auto stats_response = client->ReadResponse();
    ASSERT_TRUE(stats_response.ok());
    EXPECT_TRUE(stats_response->ok);
    EXPECT_EQ(stats_response->op, "stats");
  }
  batch.join();
  EXPECT_EQ(server.stats().deltas_ok, 1u);
  EXPECT_EQ(server.stats().deltas_failed, 0u);
  server.Stop();
}

// algo handling over the wire: "auto" resolves server-side (the
// response reports the planner's concrete choice and its plan-cache
// verdict); an unknown algo name is a structured InvalidArgument that
// leaves the connection usable.
TEST(ServiceLoopbackTest, AutoAlgoResolvesAndBogusAlgoIsStructured) {
  Graph g = MakeGraph(89);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 89);
  QueryEngine engine(&g, EngineOptions{});
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  // Unknown algo: rejected at decode with a structured error, not a
  // dropped connection.
  const std::string node_label = g.dict().Name(g.vertex_label(0));
  ASSERT_TRUE(client
                  ->SendLine(R"({"pattern":"node a )" + node_label +
                             R"(\nfocus a\n","algo":"bogus"})")
                  .ok());
  auto rejected = client->ReadResponse();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->ok);
  EXPECT_EQ(rejected->error_code, "InvalidArgument");
  EXPECT_NE(rejected->error_message.find("unknown algo"), std::string::npos)
      << rejected->error_message;

  // The connection survived: an auto query on it answers, reporting the
  // resolved matcher (never "auto" back) and a cold plan.
  ServiceRequest request = workload[0];
  request.algo = EngineAlgo::kAuto;
  auto first = client->Call(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->ok) << first->error_message;
  EXPECT_TRUE(ParseEngineAlgo(first->algo).has_value()) << first->algo;
  EXPECT_NE(first->algo, "auto");
  EXPECT_FALSE(first->plan_cache_hit);

  // A repeat of the same family is planned from the cache.
  auto second = client->Call(request);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->ok);
  EXPECT_EQ(second->algo, first->algo);
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_EQ(second->answers, first->answers);

  EXPECT_EQ(server.stats().malformed, 1u);
  server.Stop();
}

// Graceful stop answers everything already admitted: a client that
// pipelined the workload and then sees the server stop still receives
// every response before the connection closes.
TEST(ServiceLoopbackTest, StopAnswersAdmittedQueries) {
  Graph g = MakeGraph(61);
  std::vector<ServiceRequest> workload = MakeWorkload(g, 61);
  QueryEngine engine(&g, EngineOptions{});
  ServiceOptions options;
  options.max_inflight_per_client = 0;
  QueryService server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (const ServiceRequest& request : workload) {
    ASSERT_TRUE(client->Send(request).ok());
  }
  // Let the reader admit the burst, then stop concurrently with the
  // dispatch drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&] { server.Stop(); });
  size_t answered = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->ReadResponse();
    if (!response.ok()) break;  // server closed after draining
    if (response->ok) ++answered;
  }
  stopper.join();
  // Everything the reader admitted before SHUT_RD was answered; at
  // minimum the admission queue was drained, never abandoned.
  EXPECT_EQ(engine.stats().queries, answered);
}

}  // namespace
}  // namespace qgp::service
