// Fault-injection and deadline suite for the service + engine stack:
// every test drives a real QueryService over loopback and forces the
// failure through a deterministic seam — a request deadline that
// provably fires mid-evaluation, an armed failpoint in the dispatch /
// submit / delta / socket-write path, or a graceful drain racing
// in-flight work. The headline contract under every fault: structured
// error responses (never dropped connections without a reason), no
// partial state in any cache, and a service that keeps answering the
// very next request.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/pattern_parser.h"
#include "engine/query_engine.h"
#include "gen/synthetic_gen.h"
#include "service/client.h"
#include "service/query_service.h"

namespace qgp::service {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

Graph MakeGraph(uint64_t seed, size_t vertices = 60) {
  SyntheticConfig gc;
  gc.num_vertices = vertices;
  gc.num_edges = vertices * 3;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

/// A query that provably takes hundreds of milliseconds on this
/// machine: a dense 2-label graph where every vertex is a focus
/// candidate, against a 3-hop path pattern with a counting quantifier.
/// Built once and shared read-only across tests (the graph dictionary
/// already holds every label the pattern names).
struct SlowCase {
  Graph graph;
  std::string pattern_text;
};

SlowCase& Slow() {
  static SlowCase* slow = [] {
    SyntheticConfig gc;
    gc.num_vertices = 8000;
    gc.num_edges = 8000 * 8;
    gc.num_node_labels = 2;
    gc.num_edge_labels = 2;
    gc.seed = 99;
    auto* s = new SlowCase{std::move(GenerateSynthetic(gc)).value(),
                           "node x0 nl0\nnode x1 nl0\nnode x2 nl0\n"
                           "node x3 nl0\nedge x0 x1 el0 >=2\n"
                           "edge x1 x2 el0\nedge x2 x3 el0\nfocus x0\n"};
    // Intern the pattern's labels once so later parses are read-only in
    // effect (they resolve against already-interned names).
    (void)PatternParser::Parse(s->pattern_text, s->graph.mutable_dict());
    return s;
  }();
  return *slow;
}

ServiceRequest SlowRequest(const std::string& tag) {
  ServiceRequest request;
  request.pattern_text = Slow().pattern_text;
  request.algo = EngineAlgo::kQMatch;
  request.tag = tag;
  return request;
}

/// Work-counter identity modulo scheduler telemetry — the same
/// comparison the loopback differential suite uses.
void ExpectSameWork(const MatchStats& a, const MatchStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << context;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << context;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << context;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << context;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << context;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << context;
  EXPECT_EQ(a.balls_built, b.balls_built) << context;
}

/// Every test disarms on exit so a failed assertion cannot leak an
/// armed failpoint into the next test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// The acceptance scenario end to end: a query whose clean runtime is
// hundreds of milliseconds, submitted over the wire with timeout_ms=50,
// comes back as a structured DeadlineExceeded well under the clean
// runtime; the dispatch worker is immediately reusable; the timed-out
// run admitted nothing into any cache, so the clean re-run is
// byte-identical — answers, work counters, AND cache traffic — to a
// reference engine that never saw a timeout.
TEST_F(FaultInjectionTest, DeadlineExceededLoopbackEndToEnd) {
  SlowCase& slow = Slow();

  // Reference: a never-cancelled engine. Its first (cold) run provides
  // the clean wall-clock bound and the expected cache-miss profile.
  QuerySpec ref_spec;
  ref_spec.pattern = std::move(PatternParser::Parse(
                                   slow.pattern_text,
                                   slow.graph.mutable_dict()))
                         .value();
  ref_spec.algo = EngineAlgo::kQMatch;
  QueryEngine reference(&slow.graph, EngineOptions{});
  const auto ref_t0 = Clock::now();
  auto expected = reference.Submit(ref_spec);
  const double clean_ms = MsSince(ref_t0);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_GT(clean_ms, 150.0)
      << "the slow case finished too fast to prove a mid-evaluation "
         "timeout on this machine; widen the graph";

  EngineOptions engine_options;
  engine_options.enable_result_cache = true;
  QueryEngine engine(&slow.graph, engine_options);
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // The timed-out query: a structured DeadlineExceeded, well before a
  // clean evaluation could possibly have finished.
  ServiceRequest timed = SlowRequest("slow-timed");
  timed.timeout_ms = 50;
  const auto t0 = Clock::now();
  auto response = client->Call(timed);
  const double elapsed_ms = MsSince(t0);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, "DeadlineExceeded");
  EXPECT_EQ(response->tag, "slow-timed");
  EXPECT_LT(elapsed_ms, clean_ms / 2)
      << "the deadline did not interrupt the evaluation (clean run: "
      << clean_ms << " ms)";

  // Nothing the aborted run computed reached any cache.
  EXPECT_EQ(engine.cache().size(), 0u) << "candidate sets leaked";
  EXPECT_EQ(engine.ClearResultCache(), 0u) << "a partial result leaked";
  EXPECT_EQ(engine.stats().timeouts, 1u);
  EXPECT_EQ(engine.stats().failed, 1u);
  EXPECT_EQ(engine.stats().queries, 0u);

  // The worker is immediately reusable, and the clean re-run matches
  // the never-cancelled reference bit for bit — including the cache
  // traffic, which proves the rollback was complete (a leaked set would
  // surface as an extra hit / missing miss).
  ServiceRequest clean = SlowRequest("slow-clean");
  auto clean_response = client->Call(clean);
  ASSERT_TRUE(clean_response.ok()) << clean_response.status().ToString();
  ASSERT_TRUE(clean_response->ok) << clean_response->error_message;
  EXPECT_EQ(clean_response->answers, expected->answers);
  ExpectSameWork(clean_response->stats, expected->stats, "clean-after-timeout");
  EXPECT_EQ(clean_response->cache_hits, expected->cache_hits);
  EXPECT_EQ(clean_response->cache_misses, expected->cache_misses);
  EXPECT_FALSE(clean_response->result_cache_hit);

  // And the result cache works from here on — the timeout did not
  // poison the key space either.
  auto repeat = client->Call(clean);
  ASSERT_TRUE(repeat.ok());
  ASSERT_TRUE(repeat->ok);
  EXPECT_TRUE(repeat->result_cache_hit);
  EXPECT_EQ(repeat->answers, expected->answers);

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.queries_failed, 1u);
  EXPECT_EQ(stats.queries_ok, 2u);
  EXPECT_EQ(stats.shed, 0u);
  server.Stop();
}

// Queue-age shedding: a request whose deadline expires while it waits
// in the dispatch queue is answered DeadlineExceeded at dequeue without
// ever touching the engine. The delay failpoint stalls the dispatch
// worker deterministically — no sleeps racing real work.
TEST_F(FaultInjectionTest, QueueAgedRequestIsShedWithoutTouchingEngine) {
  Graph g = MakeGraph(7);
  QueryEngine engine(&g, EngineOptions{});
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  failpoint::Action stall;
  stall.kind = failpoint::Action::Kind::kDelayMs;
  stall.delay_ms = 150;
  stall.once = true;
  failpoint::Arm("service.dispatch_dequeue", stall);
  ServiceRequest request;
  request.pattern_text = "node a nl0\nfocus a\n";
  request.timeout_ms = 40;  // expires inside the 150 ms dequeue stall
  request.tag = "aged-out";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, "DeadlineExceeded");
  EXPECT_EQ(response->tag, "aged-out");
  EXPECT_GE(failpoint::HitCount("service.dispatch_dequeue"), 1u);

  // The engine never saw it; the service counted it as shed, not as an
  // evaluation failure.
  EXPECT_EQ(engine.stats().queries, 0u);
  EXPECT_EQ(engine.stats().failed, 0u);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().queries_failed, 0u);

  // Same request with headroom sails through.
  request.timeout_ms = 30000;
  request.tag = "fresh";
  auto fresh = client->Call(request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->ok) << fresh->error_message;
  server.Stop();
}

// An error armed in the dispatch seam produces a structured response
// carrying the injected code, and — with `once` — the very next request
// on the same connection succeeds.
TEST_F(FaultInjectionTest, DispatchSeamErrorIsStructuredAndTransient) {
  Graph g = MakeGraph(13);
  QueryEngine engine(&g, EngineOptions{});
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  failpoint::Arm("service.dispatch_dequeue",
                 {.kind = failpoint::Action::Kind::kError,
                  .code = StatusCode::kInternal,
                  .message = "injected dispatch fault",
                  .once = true});
  ServiceRequest request;
  request.pattern_text = "node a nl0\nfocus a\n";
  request.tag = "faulted";
  auto faulted = client->Call(request);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_FALSE(faulted->ok);
  EXPECT_EQ(faulted->error_code, "Internal");
  EXPECT_NE(faulted->error_message.find("injected dispatch fault"),
            std::string::npos)
      << faulted->error_message;

  request.tag = "healthy";
  auto healthy = client->Call(request);
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy->ok) << healthy->error_message;
  EXPECT_EQ(failpoint::HitCount("service.dispatch_dequeue"), 1u);
  server.Stop();
}

// The client retry loop against a transient engine fault: one injected
// kUnavailable from the engine.submit seam, a CallWithRetry policy of
// 3 attempts — the caller sees one successful response and the seam
// fired exactly once.
TEST_F(FaultInjectionTest, ClientRetriesInjectedUnavailable) {
  Graph g = MakeGraph(17);
  QueryEngine engine(&g, EngineOptions{});
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());

  ClientOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 5;
  auto client = ServiceClient::Connect(server.port(), "127.0.0.1", options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  failpoint::Arm("engine.submit",
                 {.kind = failpoint::Action::Kind::kError,
                  .code = StatusCode::kUnavailable,
                  .message = "injected engine overload",
                  .once = true});
  ServiceRequest request;
  request.pattern_text = "node a nl0\nfocus a\n";
  request.tag = "retried";
  auto response = client->CallWithRetry(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok) << response->error_message;
  EXPECT_EQ(response->tag, "retried");
  EXPECT_EQ(failpoint::HitCount("engine.submit"), 1u);
  // Attempt 1 failed at the seam (before evaluation), attempt 2 ran.
  EXPECT_EQ(engine.stats().queries, 1u);
  EXPECT_EQ(server.stats().queries_failed, 1u);
  EXPECT_EQ(server.stats().queries_ok, 1u);
  server.Stop();
}

// A dropped response (socket-write seam): the client's read timeout
// turns the silent loss into kDeadlineExceeded instead of a hang, and —
// per the documented contract that the stream position is ambiguous
// after a read timeout — a reconnect restores service.
TEST_F(FaultInjectionTest, DroppedResponseTimesOutAndReconnectRecovers) {
  Graph g = MakeGraph(19);
  QueryEngine engine(&g, EngineOptions{});
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());

  ClientOptions options;
  options.read_timeout_ms = 250;
  auto client = ServiceClient::Connect(server.port(), "127.0.0.1", options);
  ASSERT_TRUE(client.ok());

  failpoint::Arm("service.socket_write",
                 {.kind = failpoint::Action::Kind::kError,
                  .code = StatusCode::kIoError,
                  .message = "injected write loss",
                  .once = true});
  ServiceRequest request;
  request.pattern_text = "node a nl0\nfocus a\n";
  request.tag = "lost";
  auto lost = client->Call(request);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kDeadlineExceeded)
      << lost.status().ToString();
  EXPECT_GE(failpoint::HitCount("service.socket_write"), 1u);

  auto fresh = ServiceClient::Connect(server.port(), "127.0.0.1", options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  request.tag = "recovered";
  auto recovered = fresh->Call(request);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->ok) << recovered->error_message;
  server.Stop();
}

// A delta that fails inside the engine seam: structured error, graph
// version untouched, and the identical delta succeeds once the fault
// clears — the failed attempt left no partial mutation behind.
TEST_F(FaultInjectionTest, DeltaSeamFailureLeavesGraphUntouched) {
  Graph g = MakeGraph(29);
  QueryEngine engine(std::move(g), EngineOptions{});
  const uint64_t v0 = engine.graph_version();
  QueryService server(&engine, ServiceOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  failpoint::Arm("engine.apply_delta",
                 {.kind = failpoint::Action::Kind::kError,
                  .code = StatusCode::kIoError,
                  .message = "injected apply fault",
                  .once = true});
  ServiceRequest mutation;
  mutation.op = ServiceRequest::Op::kDelta;
  mutation.delta.add_vertices = {"novel"};
  mutation.tag = "d-faulted";
  auto faulted = client->Call(mutation);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_FALSE(faulted->ok);
  EXPECT_EQ(faulted->error_code, "IoError");
  EXPECT_EQ(engine.graph_version(), v0);
  EXPECT_EQ(server.stats().deltas_failed, 1u);

  mutation.tag = "d-applied";
  auto applied = client->Call(mutation);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied->ok) << applied->error_message;
  EXPECT_EQ(applied->graph_version, v0 + 1);
  EXPECT_EQ(server.stats().deltas_ok, 1u);
  server.Stop();
}

// Graceful drain under load: one dispatch worker, a slow query
// in-flight plus two pipelined behind it, and a Stop() whose natural-
// drain budget cannot possibly cover the backlog. Every admitted
// request still gets a response before its socket closes — the
// in-flight evaluation unwinds with kCancelled, the queued ones are
// shed with kCancelled at dequeue — and the engine's cancellation
// counter proves the unwind came from the drain token, not a timeout.
TEST_F(FaultInjectionTest, DrainCancelsInFlightAndShedsQueued) {
  SlowCase& slow = Slow();
  QueryEngine engine(&slow.graph, EngineOptions{});
  ServiceOptions options;
  options.dispatch_threads = 1;  // deterministic: one in-flight, two queued
  options.drain_timeout_ms = 50;
  QueryService server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Send(SlowRequest("drain-" + std::to_string(i))).ok());
  }
  // Let the single worker pop request 0 and get well into evaluation
  // (the slow case runs hundreds of milliseconds).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();

  for (int i = 0; i < 3; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok())
        << "request " << i
        << " got no response before close: " << response.status().ToString();
    EXPECT_FALSE(response->ok) << "request " << i
                               << " outran the drain - widen the slow case";
    EXPECT_EQ(response->error_code, "Cancelled") << "request " << i;
    EXPECT_EQ(response->tag, "drain-" + std::to_string(i));
  }
  EXPECT_EQ(engine.stats().cancellations, 1u);
  EXPECT_EQ(server.stats().shed, 2u);
  EXPECT_EQ(server.stats().queries_failed, 1u);
}

// Connecting to a dead port fails fast with the retryable kUnavailable,
// not a hang — the connect timeout is the ceiling, ECONNREFUSED the
// usual fast path.
TEST_F(FaultInjectionTest, ConnectToDeadPortFailsFast) {
  // Grab a port that was just live, then stop the server so nothing
  // listens there.
  Graph g = MakeGraph(37);
  QueryEngine engine(&g, EngineOptions{});
  int dead_port = 0;
  {
    QueryService server(&engine, ServiceOptions{});
    ASSERT_TRUE(server.Start().ok());
    dead_port = server.port();
    server.Stop();
  }
  ClientOptions options;
  options.connect_timeout_ms = 1000;
  const auto t0 = Clock::now();
  auto client = ServiceClient::Connect(dead_port, "127.0.0.1", options);
  const double elapsed_ms = MsSince(t0);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable)
      << client.status().ToString();
  EXPECT_LT(elapsed_ms, 3000.0);
}

}  // namespace
}  // namespace qgp::service
