// AdmissionController suite: the global in-flight bound blocks
// (backpressure), the per-client limit rejects immediately, Exit wakes
// blocked entrants, and Close fails everything — current and future.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "service/admission.h"

namespace qgp::service {
namespace {

using Admit = AdmissionController::Admit;

AdmissionController::Options Limits(size_t global, size_t per_client) {
  AdmissionController::Options o;
  o.max_inflight = global;
  o.max_inflight_per_client = per_client;
  return o;
}

TEST(AdmissionTest, AdmitsUpToPerClientLimitThenRejects) {
  AdmissionController a(Limits(100, 3));
  EXPECT_EQ(a.Enter(1), Admit::kAdmitted);
  EXPECT_EQ(a.Enter(1), Admit::kAdmitted);
  EXPECT_EQ(a.Enter(1), Admit::kAdmitted);
  EXPECT_EQ(a.Enter(1), Admit::kRejected);  // client 1 is at its limit
  EXPECT_EQ(a.Enter(2), Admit::kAdmitted);  // other clients keep flowing
  EXPECT_EQ(a.client_inflight(1), 3u);
  EXPECT_EQ(a.inflight(), 4u);
  EXPECT_EQ(a.total_rejected(), 1u);

  a.Exit(1);
  EXPECT_EQ(a.Enter(1), Admit::kAdmitted);  // slot freed
  EXPECT_EQ(a.total_admitted(), 5u);
}

TEST(AdmissionTest, ZeroLimitsMeanUnbounded) {
  AdmissionController a(Limits(0, 0));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Enter(7), Admit::kAdmitted);
  EXPECT_EQ(a.inflight(), 100u);
}

TEST(AdmissionTest, GlobalBoundBlocksUntilExit) {
  AdmissionController a(Limits(2, 0));
  ASSERT_EQ(a.Enter(1), Admit::kAdmitted);
  ASSERT_EQ(a.Enter(2), Admit::kAdmitted);

  std::atomic<bool> admitted{false};
  std::thread blocked([&] {
    EXPECT_EQ(a.Enter(3), Admit::kAdmitted);  // blocks: global bound hit
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load()) << "Enter should still be parked";
  a.Exit(1);
  blocked.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(a.inflight(), 2u);
}

TEST(AdmissionTest, PerClientLimitRecheckedAfterGlobalWait) {
  AdmissionController a(Limits(2, 1));
  ASSERT_EQ(a.Enter(1), Admit::kAdmitted);
  ASSERT_EQ(a.Enter(2), Admit::kAdmitted);

  // Client 3 parks on the global bound; once Exit(2) frees a slot, the
  // parked Enter and a sibling request of client 3 race for the
  // client's only per-client slot. Either interleaving is legal — the
  // parked waiter may resume first, or the sibling may slip in, in
  // which case the parked Enter must re-check the per-client limit
  // after its global wait and reject. What may never happen is both
  // admitting.
  std::atomic<int> parked_result{-1};
  std::thread parked([&] {
    parked_result.store(static_cast<int>(a.Enter(3)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  a.Exit(2);
  const Admit sibling = a.Enter(3);  // immediate verdict either way:
                                     // rejected per-client if the parked
                                     // waiter already won the slot
  a.Exit(1);  // frees the global bound in case the waiter is still parked
  parked.join();
  const Admit waiter = static_cast<Admit>(parked_result.load());
  EXPECT_NE(sibling == Admit::kAdmitted, waiter == Admit::kAdmitted)
      << "exactly one of the two client-3 entries may win the slot";
  EXPECT_EQ(a.client_inflight(3), 1u);
  EXPECT_EQ(a.total_rejected(), 1u);
}

TEST(AdmissionTest, CloseWakesBlockedAndFailsFutureEntries) {
  AdmissionController a(Limits(1, 0));
  ASSERT_EQ(a.Enter(1), Admit::kAdmitted);
  std::atomic<int> result{-1};
  std::thread blocked([&] { result.store(static_cast<int>(a.Enter(2))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  a.Close();
  blocked.join();
  EXPECT_EQ(static_cast<Admit>(result.load()), Admit::kClosed);
  EXPECT_EQ(a.Enter(3), Admit::kClosed);
}

TEST(AdmissionTest, ConcurrentEntersNeverExceedEitherBound) {
  constexpr size_t kGlobal = 4;
  constexpr size_t kPerClient = 2;
  AdmissionController a(Limits(kGlobal, kPerClient));
  std::atomic<size_t> active{0};
  std::atomic<size_t> max_active{0};
  std::atomic<size_t> admitted{0};
  std::atomic<size_t> rejected{0};

  // 8 threads as 4 clients (2 threads per client), each looping
  // admit-work-exit; the observed concurrent maximum must respect the
  // global bound and every rejection must be a per-client overflow.
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      const uint64_t client = t / 2;
      for (int i = 0; i < 200; ++i) {
        switch (a.Enter(client)) {
          case Admit::kAdmitted: {
            const size_t now = active.fetch_add(1) + 1;
            size_t seen = max_active.load();
            while (now > seen && !max_active.compare_exchange_weak(seen, now)) {
            }
            ++admitted;
            std::this_thread::yield();
            active.fetch_sub(1);
            a.Exit(client);
            break;
          }
          case Admit::kRejected:
            ++rejected;
            EXPECT_LE(a.client_inflight(client), kPerClient);
            break;
          case Admit::kClosed:
            ADD_FAILURE() << "controller was never closed";
            return;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_LE(max_active.load(), kGlobal);
  EXPECT_EQ(a.inflight(), 0u) << "every admit must have exited";
  EXPECT_EQ(a.total_admitted(), admitted.load());
  EXPECT_EQ(a.total_rejected(), rejected.load());
  EXPECT_GT(admitted.load(), 0u);
}

}  // namespace
}  // namespace qgp::service
