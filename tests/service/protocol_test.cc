// Wire-codec suite for the network query service: JSON value
// round-trips, request/response encode<->decode identity, and the
// strict-decode contract (unknown keys, wrong types and missing
// required fields are rejected with structured errors, never evaluated
// silently-wrong).
#include <gtest/gtest.h>

#include <string>

#include "service/json.h"
#include "service/protocol.h"

namespace qgp::service {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonTest, DumpParsesBackIdentically) {
  JsonValue::Object obj;
  obj["b"] = true;
  obj["n"] = nullptr;
  obj["i"] = uint64_t{12345678901234};
  obj["d"] = 1.5;
  obj["s"] = "line1\nline2\t\"quoted\" \\slash";
  obj["a"] = JsonValue::Array{1, "two", false};
  JsonValue::Object nested;
  nested["k"] = "v";
  obj["o"] = std::move(nested);
  const JsonValue original{std::move(obj)};

  const std::string dumped = original.Dump();
  // Newline-delimited framing depends on this: no raw newline survives.
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  auto parsed = ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, original);
  EXPECT_EQ(parsed->Dump(), dumped);  // deterministic encoding
}

TEST(JsonTest, IntegralNumbersHaveNoDecimalPoint) {
  EXPECT_EQ(JsonValue(uint64_t{42}).Dump(), "42");
  EXPECT_EQ(JsonValue(1.5).Dump(), "1.5");
}

TEST(JsonTest, ParsesEscapesAndUnicode) {
  auto v = ParseJson(R"("a\u0041\n\u00e9\ud83d\ude00")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->as_string(), "aA\n\u00e9\U0001f600");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"unterminated", "{\"a\":}", "1 2",
        "{\"a\":1,}", "[1]extra", "nulll", "\"bad\\q\"", "\"\\ud83d\"",
        "-", "01"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// ------------------------------------------------------------- requests

TEST(ProtocolTest, RequestRoundTripsThroughCodec) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kQuery;
  request.pattern_text = "node a person\nnode b person\nedge a b e\nfocus a\n";
  request.algo = EngineAlgo::kEnum;
  request.options.max_isomorphisms = 123456;
  request.options.use_simulation = true;
  request.share_cache = false;
  request.tag = "req-17";

  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, ServiceRequest::Op::kQuery);
  EXPECT_EQ(decoded->pattern_text, request.pattern_text);
  EXPECT_EQ(decoded->algo, EngineAlgo::kEnum);
  EXPECT_EQ(decoded->options.max_isomorphisms, 123456u);
  EXPECT_TRUE(decoded->options.use_simulation);
  EXPECT_FALSE(decoded->share_cache);
  EXPECT_EQ(decoded->tag, "req-17");
  // Encoding is deterministic: a second trip produces the same line.
  EXPECT_EQ(EncodeRequest(*decoded), EncodeRequest(request));
}

TEST(ProtocolTest, StatsAndShutdownRequestsRoundTrip) {
  for (ServiceRequest::Op op :
       {ServiceRequest::Op::kStats, ServiceRequest::Op::kShutdown}) {
    ServiceRequest request;
    request.op = op;
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->op, op);
  }
}

TEST(ProtocolTest, OpDefaultsToQuery) {
  auto decoded = DecodeRequest(R"({"pattern":"node a x\nfocus a\n"})");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, ServiceRequest::Op::kQuery);
  EXPECT_TRUE(decoded->share_cache);  // default
}

TEST(ProtocolTest, AlgoFieldRoundTripsAutoAndDefaultsToUnset) {
  // "auto" is a first-class wire name: the planner resolves it
  // server-side, so it must survive the request codec like any other.
  ServiceRequest request;
  request.pattern_text = "node a x\nfocus a\n";
  request.algo = EngineAlgo::kAuto;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->algo, EngineAlgo::kAuto);
  EXPECT_EQ(EncodeRequest(*decoded), EncodeRequest(request));

  // An omitted algo decodes to UNSET (engine default), never to some
  // concrete matcher — and an unset algo is not emitted on the wire.
  auto bare = DecodeRequest(R"({"pattern":"node a x\nfocus a\n"})");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_FALSE(bare->algo.has_value());
  EXPECT_EQ(EncodeRequest(*bare).find("algo"), std::string::npos);

  auto spelled = DecodeRequest(R"({"pattern":"p","algo":"auto"})");
  ASSERT_TRUE(spelled.ok()) << spelled.status().ToString();
  EXPECT_EQ(spelled->algo, EngineAlgo::kAuto);
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",                                    // not an object
      R"({"op":"query"})",                          // query without pattern
      R"({"op":"query","pattern":""})",             // empty pattern
      R"({"op":"stats","pattern":"node a x\n"})",   // pattern on non-query
      R"({"op":"mystery"})",                        // unknown op
      R"({"pattern":"p","algo":"quantum"})",        // unknown algo
      R"({"pattern":"p","bogus":1})",               // unknown top-level key
      R"({"pattern":"p","options":{"bogus":1}})",   // unknown option
      R"({"pattern":"p","options":{"max_isomorphisms":-1}})",  // negative
      R"({"pattern":"p","options":{"max_isomorphisms":3.7}})", // fractional
      R"({"pattern":"p","options":{"use_simulation":1}})",     // wrong type
      R"({"pattern":"p","share_cache":"yes"})",     // wrong type
      R"({"pattern":12})",                          // wrong type
      R"({"op":5})",                                // wrong type
      R"({"tag":5,"pattern":"p"})",                 // wrong type
  };
  for (const char* line : bad) {
    auto decoded = DecodeRequest(line);
    EXPECT_FALSE(decoded.ok()) << "accepted: " << line;
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << line;
    }
  }
}

TEST(ProtocolTest, DeltaRequestRoundTripsThroughCodec) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kDelta;
  request.delta.add_vertices = {"person", "org"};
  request.delta.remove_vertices = {3, 4242};
  request.delta.add_edges = {{0, 7, "follows"}, {7, 0, "follows"}};
  request.delta.remove_edges = {{2, 3, "likes"}};
  request.tag = "d-1";

  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, ServiceRequest::Op::kDelta);
  EXPECT_EQ(decoded->delta.add_vertices, request.delta.add_vertices);
  EXPECT_EQ(decoded->delta.remove_vertices, request.delta.remove_vertices);
  ASSERT_EQ(decoded->delta.add_edges.size(), 2u);
  EXPECT_EQ(decoded->delta.add_edges[0].src, 0u);
  EXPECT_EQ(decoded->delta.add_edges[0].dst, 7u);
  EXPECT_EQ(decoded->delta.add_edges[0].label, "follows");
  ASSERT_EQ(decoded->delta.remove_edges.size(), 1u);
  EXPECT_EQ(decoded->delta.remove_edges[0].label, "likes");
  EXPECT_EQ(decoded->tag, "d-1");
  EXPECT_EQ(EncodeRequest(*decoded), EncodeRequest(request));

  // An empty batch is a legal request (a no-op delta still bumps the
  // graph version server-side).
  auto empty = DecodeRequest(R"({"op":"delta"})");
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->op, ServiceRequest::Op::kDelta);
  EXPECT_TRUE(empty->delta.Empty());
}

TEST(ProtocolTest, RejectsMalformedDeltaRequests) {
  const char* bad[] = {
      // delta fields on a non-delta op
      R"({"op":"query","pattern":"p","add_vertices":["x"]})",
      R"({"op":"stats","remove_vertices":[1]})",
      // pattern on a delta op
      R"({"op":"delta","pattern":"node a x\n"})",
      // wrong container / element types
      R"({"op":"delta","add_vertices":"person"})",
      R"({"op":"delta","add_vertices":[1]})",
      R"({"op":"delta","remove_vertices":[-1]})",
      R"({"op":"delta","remove_vertices":[1.5]})",
      R"({"op":"delta","add_edges":[[0,1,"e"]]})",      // array, not object
      R"({"op":"delta","add_edges":[{"src":0,"dst":1}]})",        // no label
      R"({"op":"delta","add_edges":[{"src":0,"label":"e"}]})",    // no dst
      R"({"op":"delta","remove_edges":[{"src":0,"dst":1,"label":5}]})",
      R"({"op":"delta","remove_edges":[{"src":-2,"dst":1,"label":"e"}]})",
      R"({"op":"delta","add_edges":[{"src":0,"dst":1,"label":"e","w":1}]})",
  };
  for (const char* line : bad) {
    auto decoded = DecodeRequest(line);
    EXPECT_FALSE(decoded.ok()) << "accepted: " << line;
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << line;
    }
  }
}

// ------------------------------------------------------------ responses

TEST(ProtocolTest, QueryResponseRoundTrips) {
  QueryOutcome outcome;
  outcome.tag = "q7";
  outcome.answers = {3, 17, 4242};
  outcome.wall_ms = 1.875;
  outcome.cache_hits = 4;
  outcome.cache_misses = 1;
  outcome.result_cache_hit = true;
  outcome.algo = EngineAlgo::kEnum;
  outcome.plan_cache_hit = true;
  outcome.stats.search_extensions = 211;
  outcome.stats.isomorphisms_enumerated = 99;
  outcome.stats.balls_built = 7;
  outcome.stats.scheduler_tasks = 31;

  auto decoded = DecodeResponse(EncodeQueryResponse(outcome));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->op, "query");
  EXPECT_EQ(decoded->tag, "q7");
  EXPECT_EQ(decoded->answers, outcome.answers);
  EXPECT_DOUBLE_EQ(decoded->wall_ms, 1.875);
  EXPECT_EQ(decoded->cache_hits, 4u);
  EXPECT_EQ(decoded->cache_misses, 1u);
  EXPECT_TRUE(decoded->result_cache_hit);
  // The effective matcher and the planner's cache verdict ride along so
  // clients see what algo = auto resolved to.
  EXPECT_EQ(decoded->algo, "enum");
  EXPECT_TRUE(decoded->plan_cache_hit);
  EXPECT_EQ(decoded->stats.search_extensions, 211u);
  EXPECT_EQ(decoded->stats.isomorphisms_enumerated, 99u);
  EXPECT_EQ(decoded->stats.balls_built, 7u);
  EXPECT_EQ(decoded->stats.scheduler_tasks, 31u);
}

TEST(ProtocolTest, DeltaResponseRoundTrips) {
  DeltaOutcome outcome;
  outcome.graph_version = 5;
  outcome.vertices_added = 2;
  outcome.vertices_removed = 1;
  outcome.edges_added = 3;
  outcome.edges_removed = 4;
  outcome.candidate_sets_evicted = 6;
  outcome.results_invalidated = 7;
  outcome.plans_invalidated = 8;
  outcome.partition_invalidated = true;
  outcome.wall_ms = 0.25;

  auto decoded = DecodeResponse(EncodeDeltaResponse(outcome, "d-9"));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->op, "delta");
  EXPECT_EQ(decoded->tag, "d-9");
  EXPECT_EQ(decoded->graph_version, 5u);
  // The net counts and invalidation tallies ride in the body.
  EXPECT_EQ(decoded->body.Find("vertices_added")->as_number(), 2);
  EXPECT_EQ(decoded->body.Find("vertices_removed")->as_number(), 1);
  EXPECT_EQ(decoded->body.Find("edges_added")->as_number(), 3);
  EXPECT_EQ(decoded->body.Find("edges_removed")->as_number(), 4);
  EXPECT_EQ(decoded->body.Find("candidate_sets_evicted")->as_number(), 6);
  EXPECT_EQ(decoded->body.Find("results_invalidated")->as_number(), 7);
  EXPECT_EQ(decoded->body.Find("plans_invalidated")->as_number(), 8);
  EXPECT_TRUE(decoded->body.Find("partition_invalidated")->as_bool());

  // A delta response without its version is rejected, not defaulted.
  EXPECT_FALSE(DecodeResponse(R"({"ok":true,"op":"delta","tag":""})").ok());
}

TEST(ProtocolTest, StatsResponseCarriesDeltaTelemetry) {
  EngineStats engine;
  engine.deltas = 4;
  engine.delta_wall_ms = 1.5;
  engine.results_invalidated = 9;
  engine.repair_hits = 5;
  engine.repair_fallbacks = 2;
  engine.plans_built = 11;
  engine.plan_hits = 6;
  engine.plans_invalidated = 3;
  ServiceStats service;
  service.deltas_ok = 4;
  service.deltas_failed = 1;

  auto decoded = DecodeResponse(EncodeStatsResponse(engine, service));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const JsonValue* e = decoded->body.Find("engine");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->Find("deltas")->as_number(), 4);
  EXPECT_DOUBLE_EQ(e->Find("delta_wall_ms")->as_number(), 1.5);
  EXPECT_EQ(e->Find("results_invalidated")->as_number(), 9);
  EXPECT_EQ(e->Find("repair_hits")->as_number(), 5);
  EXPECT_EQ(e->Find("repair_fallbacks")->as_number(), 2);
  EXPECT_EQ(e->Find("plans_built")->as_number(), 11);
  EXPECT_EQ(e->Find("plan_hits")->as_number(), 6);
  EXPECT_EQ(e->Find("plans_invalidated")->as_number(), 3);
  const JsonValue* s = decoded->body.Find("service");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Find("deltas_ok")->as_number(), 4);
  EXPECT_EQ(s->Find("deltas_failed")->as_number(), 1);
}

TEST(ProtocolTest, ErrorResponseRoundTrips) {
  const std::string line = EncodeErrorResponse(
      ServiceRequest::Op::kQuery,
      Status::Unavailable("per-client in-flight limit reached"), "req-3");
  auto decoded = DecodeResponse(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->op, "query");
  EXPECT_EQ(decoded->tag, "req-3");
  EXPECT_EQ(decoded->error_code, "Unavailable");
  EXPECT_EQ(decoded->error_message, "per-client in-flight limit reached");
}

TEST(ProtocolTest, StatsResponseCarriesEngineAndServiceTelemetry) {
  EngineStats engine;
  engine.queries = 12;
  engine.failed = 2;
  engine.cache_hits = 30;
  engine.cache_misses = 10;
  engine.wall_ms = 123.5;
  engine.match.search_extensions = 777;
  ServiceStats service;
  service.connections = 3;
  service.requests = 20;
  service.queries_ok = 10;
  service.rejected = 1;

  auto decoded = DecodeResponse(EncodeStatsResponse(engine, service));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->op, "stats");
  const JsonValue* e = decoded->body.Find("engine");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->Find("queries")->as_number(), 12);
  EXPECT_EQ(e->Find("failed")->as_number(), 2);
  EXPECT_DOUBLE_EQ(e->Find("cache_hit_ratio")->as_number(), 0.75);
  EXPECT_EQ(e->Find("match")->Find("search_extensions")->as_number(), 777);
  const JsonValue* s = decoded->body.Find("service");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Find("connections")->as_number(), 3);
  EXPECT_EQ(s->Find("requests")->as_number(), 20);
  EXPECT_EQ(s->Find("queries_ok")->as_number(), 10);
  EXPECT_EQ(s->Find("rejected")->as_number(), 1);
}

TEST(ProtocolTest, MatchStatsJsonIsFieldComplete) {
  // Every counter distinct, so a swapped field pairs two mismatches.
  MatchStats s;
  s.isomorphisms_enumerated = 1;
  s.witness_searches = 2;
  s.search_extensions = 3;
  s.candidates_initial = 4;
  s.candidates_pruned = 5;
  s.focus_candidates_checked = 6;
  s.inc_candidates_checked = 7;
  s.balls_built = 8;
  s.scheduler_tasks = 9;
  s.scheduler_steals = 10;
  auto back = MatchStatsFromJson(MatchStatsToJson(s));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->isomorphisms_enumerated, 1u);
  EXPECT_EQ(back->witness_searches, 2u);
  EXPECT_EQ(back->search_extensions, 3u);
  EXPECT_EQ(back->candidates_initial, 4u);
  EXPECT_EQ(back->candidates_pruned, 5u);
  EXPECT_EQ(back->focus_candidates_checked, 6u);
  EXPECT_EQ(back->inc_candidates_checked, 7u);
  EXPECT_EQ(back->balls_built, 8u);
  EXPECT_EQ(back->scheduler_tasks, 9u);
  EXPECT_EQ(back->scheduler_steals, 10u);
}

TEST(ProtocolTest, ResponsesAreSingleLines) {
  QueryOutcome outcome;
  outcome.tag = "multi\nline\ntag";
  EXPECT_EQ(EncodeQueryResponse(outcome).find('\n'), std::string::npos);
  EXPECT_EQ(EncodeErrorResponse(ServiceRequest::Op::kQuery,
                                Status::Internal("a\nb"), "t\nt")
                .find('\n'),
            std::string::npos);
}

}  // namespace
}  // namespace qgp::service
