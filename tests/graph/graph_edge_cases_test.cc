// Edge cases of the CSR substrate that the intersection kernels rely on:
// labels nothing carries, parallel edges with distinct labels, single-
// vertex graphs, and the (label, endpoint) sort invariant that makes
// label slices valid galloping inputs.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/graph_algorithms.h"
#include "graph/graph_builder.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

TEST(GraphEdgeCases, LabelsNothingCarries) {
  GraphBuilder b;
  VertexId person = b.AddVertex("person");
  VertexId city = b.AddVertex("city");
  ASSERT_TRUE(b.AddEdge(person, city, "lives_in").ok());
  Label ghost = b.InternLabel("ghost");  // interned but never used
  Graph g = std::move(b).Build().value();

  EXPECT_TRUE(g.OutNeighborsWithLabel(person, ghost).empty());
  EXPECT_TRUE(g.InNeighborsWithLabel(city, ghost).empty());
  EXPECT_EQ(g.OutDegreeWithLabel(person, ghost), 0u);
  EXPECT_FALSE(g.HasEdge(person, city, ghost));
  EXPECT_TRUE(g.VerticesWithLabel(ghost).empty());
  EXPECT_EQ(g.NumVerticesWithLabel(ghost), 0u);
  // Label ids past the dictionary must degrade to empty, not crash.
  EXPECT_TRUE(g.VerticesWithLabel(kInvalidLabel).empty());
}

TEST(GraphEdgeCases, ParallelEdgesWithDistinctLabels) {
  GraphBuilder b;
  VertexId a = b.AddVertex("n");
  VertexId c = b.AddVertex("n");
  ASSERT_TRUE(b.AddEdge(a, c, "x").ok());
  ASSERT_TRUE(b.AddEdge(a, c, "y").ok());
  ASSERT_TRUE(b.AddEdge(a, c, "x").ok());  // exact duplicate: dropped
  Graph g = std::move(b).Build().value();

  Label x = g.dict().Find("x");
  Label y = g.dict().Find("y");
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.OutNeighborsWithLabel(a, x).size(), 1u);
  EXPECT_EQ(g.OutNeighborsWithLabel(a, y).size(), 1u);
  EXPECT_TRUE(g.HasEdge(a, c, x));
  EXPECT_TRUE(g.HasEdge(a, c, y));
  EXPECT_FALSE(g.HasEdge(c, a, x));
  EXPECT_EQ(g.InNeighborsWithLabel(c, x).size(), 1u);
  EXPECT_EQ(g.InNeighborsWithLabel(c, y).size(), 1u);
}

TEST(GraphEdgeCases, SingleVertexGraph) {
  GraphBuilder b;
  VertexId v = b.AddVertex("solo");
  Graph g = std::move(b).Build().value();

  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.OutNeighbors(v).empty());
  EXPECT_TRUE(g.InNeighbors(v).empty());
  Label solo = g.dict().Find("solo");
  ASSERT_EQ(g.VerticesWithLabel(solo).size(), 1u);
  EXPECT_EQ(g.VerticesWithLabel(solo)[0], v);
  EXPECT_FALSE(g.HasEdge(v, v, solo));
  std::vector<VertexId> ball = KHopBall(g, v, 3);
  EXPECT_EQ(ball, std::vector<VertexId>{v});
}

TEST(GraphEdgeCases, SelfLoop) {
  GraphBuilder b;
  VertexId v = b.AddVertex("n");
  ASSERT_TRUE(b.AddEdge(v, v, "loop").ok());
  Graph g = std::move(b).Build().value();
  Label loop = g.dict().Find("loop");
  EXPECT_TRUE(g.HasEdge(v, v, loop));
  ASSERT_EQ(g.OutNeighborsWithLabel(v, loop).size(), 1u);
  EXPECT_EQ(g.OutNeighborsWithLabel(v, loop)[0].v, v);
}

// The invariant the galloping/merge kernels assume: every adjacency list
// is sorted by (label, endpoint), so each per-label slice is a strictly
// ascending endpoint run (strict because exact duplicates are deduped).
TEST(GraphEdgeCases, LabelSlicesAreSortedEndpointRuns) {
  SyntheticConfig gc;
  gc.num_vertices = 300;
  gc.num_edges = 1200;
  gc.num_node_labels = 8;
  gc.num_edge_labels = 5;
  gc.seed = 17;
  Graph g = std::move(GenerateSynthetic(gc)).value();

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::span<const Neighbor> out = g.OutNeighbors(v);
    for (size_t i = 1; i < out.size(); ++i) {
      ASSERT_TRUE(out[i - 1].label < out[i].label ||
                  (out[i - 1].label == out[i].label &&
                   out[i - 1].v < out[i].v))
          << "out-list of " << v << " not sorted by (label, dst)";
    }
    for (Label l = 0; l < g.dict().size(); ++l) {
      std::span<const Neighbor> slice = g.OutNeighborsWithLabel(v, l);
      for (const Neighbor& n : slice) ASSERT_EQ(n.label, l);
      for (size_t i = 1; i < slice.size(); ++i) {
        ASSERT_LT(slice[i - 1].v, slice[i].v);
      }
    }
  }
}

}  // namespace
}  // namespace qgp
