#include <gtest/gtest.h>

#include <sstream>

#include "gen/social_gen.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace qgp {
namespace {

TEST(GraphIoBinaryTest, RoundTripPreservesEverything) {
  SocialConfig c;
  c.num_users = 300;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  std::ostringstream buffer;
  ASSERT_TRUE(GraphIo::WriteBinary(g, buffer).ok());
  std::istringstream in(buffer.str());
  auto g2 = GraphIo::ReadBinary(in);
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  ASSERT_EQ(g2->num_vertices(), g.num_vertices());
  ASSERT_EQ(g2->num_edges(), g.num_edges());
  EXPECT_EQ(g2->dict().size(), g.dict().size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g2->vertex_label(v), g.vertex_label(v));
    auto a = g.OutNeighbors(v);
    auto b = g2->OutNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  // Label names survive too.
  for (Label l = 0; l < g.dict().size(); ++l) {
    EXPECT_EQ(g2->dict().Name(l), g.dict().Name(l));
  }
}

TEST(GraphIoBinaryTest, EmptyGraphRoundTrip) {
  GraphBuilder b;
  Graph g = std::move(b).Build().value();
  std::ostringstream buffer;
  ASSERT_TRUE(GraphIo::WriteBinary(g, buffer).ok());
  std::istringstream in(buffer.str());
  auto g2 = GraphIo::ReadBinary(in);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_vertices(), 0u);
}

TEST(GraphIoBinaryTest, RejectsBadMagic) {
  std::istringstream in("NOTAGRAPH");
  auto g = GraphIo::ReadBinary(in);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST(GraphIoBinaryTest, RejectsTruncatedStream) {
  SocialConfig c;
  c.num_users = 50;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  std::ostringstream buffer;
  ASSERT_TRUE(GraphIo::WriteBinary(g, buffer).ok());
  std::string data = buffer.str();
  for (size_t cut : {6ul, 20ul, data.size() / 2, data.size() - 3}) {
    std::istringstream in(data.substr(0, cut));
    auto truncated = GraphIo::ReadBinary(in);
    EXPECT_FALSE(truncated.ok()) << "cut at " << cut;
  }
}

TEST(GraphIoBinaryTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/qgp_binary_roundtrip.bin";
  SocialConfig c;
  c.num_users = 100;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  ASSERT_TRUE(GraphIo::WriteBinaryFile(g, path).ok());
  auto g2 = GraphIo::ReadBinaryFile(path);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), g.num_edges());
}

TEST(GraphIoBinaryTest, MissingFileIsIoError) {
  auto g = GraphIo::ReadBinaryFile("/no/such/file.bin");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace qgp
