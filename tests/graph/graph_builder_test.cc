#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(GraphBuilderTest, VerticesGetDenseIds) {
  GraphBuilder b;
  EXPECT_EQ(b.AddVertex("a"), 0u);
  EXPECT_EQ(b.AddVertex("b"), 1u);
  EXPECT_EQ(b.AddVertex("a"), 2u);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->vertex_label(0), g->vertex_label(2));
  EXPECT_NE(g->vertex_label(0), g->vertex_label(1));
}

TEST(GraphBuilderTest, EdgeEndpointValidation) {
  GraphBuilder b;
  VertexId v = b.AddVertex("a");
  EXPECT_FALSE(b.AddEdge(v, 99, "e").ok());
  EXPECT_FALSE(b.AddEdge(99, v, "e").ok());
  EXPECT_FALSE(b.AddEdgeWithLabel(v, v, kInvalidLabel).ok());
}

TEST(GraphBuilderTest, AdjacencySortedByLabelThenVertex) {
  GraphBuilder b;
  VertexId s = b.AddVertex("src");
  VertexId t1 = b.AddVertex("t");
  VertexId t2 = b.AddVertex("t");
  VertexId t3 = b.AddVertex("t");
  Label lz = b.InternLabel("z_label");
  Label la = b.InternLabel("a_label");
  ASSERT_TRUE(b.AddEdgeWithLabel(s, t3, lz).ok());
  ASSERT_TRUE(b.AddEdgeWithLabel(s, t1, la).ok());
  ASSERT_TRUE(b.AddEdgeWithLabel(s, t2, lz).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto out = g->OutNeighbors(s);
  ASSERT_EQ(out.size(), 3u);
  // Sorted by (label, dst): labels were interned z before a, so the z
  // label has the smaller id.
  EXPECT_EQ(out[0].label, lz);
  EXPECT_EQ(out[0].v, t2);
  EXPECT_EQ(out[1].label, lz);
  EXPECT_EQ(out[1].v, t3);
  EXPECT_EQ(out[2].label, la);
  EXPECT_EQ(out[2].v, t1);
}

TEST(GraphBuilderTest, DeduplicatesExactTriples) {
  GraphBuilder b;
  VertexId a = b.AddVertex("x");
  VertexId c = b.AddVertex("x");
  ASSERT_TRUE(b.AddEdge(a, c, "e").ok());
  ASSERT_TRUE(b.AddEdge(a, c, "e").ok());
  ASSERT_TRUE(b.AddEdge(a, c, "f").ok());  // distinct label survives
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(GraphBuilderTest, InNeighborsMirrorOutNeighbors) {
  GraphBuilder b;
  VertexId a = b.AddVertex("x");
  VertexId c = b.AddVertex("y");
  VertexId d = b.AddVertex("y");
  ASSERT_TRUE(b.AddEdge(a, c, "e").ok());
  ASSERT_TRUE(b.AddEdge(d, c, "e").ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto in = g->InNeighbors(c);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0].v, a);
  EXPECT_EQ(in[1].v, d);
  EXPECT_EQ(g->InDegree(c), 2u);
  EXPECT_EQ(g->OutDegree(c), 0u);
}

TEST(GraphBuilderTest, LabelIndex) {
  GraphBuilder b;
  VertexId a = b.AddVertex("p");
  VertexId c = b.AddVertex("q");
  VertexId d = b.AddVertex("p");
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  Label p = g->dict().Find("p");
  auto span = g->VerticesWithLabel(p);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0], a);
  EXPECT_EQ(span[1], d);
  EXPECT_EQ(g->NumVerticesWithLabel(g->dict().Find("q")), 1u);
  EXPECT_EQ(g->VerticesWithLabel(kInvalidLabel).size(), 0u);
  (void)c;
}

TEST(GraphBuilderTest, HasEdgeAndLabelSlices) {
  GraphBuilder b;
  VertexId a = b.AddVertex("x");
  VertexId c = b.AddVertex("y");
  VertexId d = b.AddVertex("y");
  ASSERT_TRUE(b.AddEdge(a, c, "e").ok());
  ASSERT_TRUE(b.AddEdge(a, d, "f").ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  Label e = g->dict().Find("e");
  Label f = g->dict().Find("f");
  EXPECT_TRUE(g->HasEdge(a, c, e));
  EXPECT_FALSE(g->HasEdge(a, c, f));
  EXPECT_FALSE(g->HasEdge(c, a, e));
  EXPECT_EQ(g->OutNeighborsWithLabel(a, e).size(), 1u);
  EXPECT_EQ(g->OutNeighborsWithLabel(a, f).size(), 1u);
  EXPECT_EQ(g->OutDegreeWithLabel(a, e), 1u);
  EXPECT_EQ(g->InDegreeWithLabel(c, e), 1u);
  EXPECT_EQ(g->InDegreeWithLabel(c, f), 0u);
}

TEST(GraphBuilderTest, SelfLoops) {
  GraphBuilder b;
  VertexId a = b.AddVertex("x");
  ASSERT_TRUE(b.AddEdge(a, a, "loop").ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(a, a, g->dict().Find("loop")));
  EXPECT_EQ(g->OutDegree(a), 1u);
  EXPECT_EQ(g->InDegree(a), 1u);
}

TEST(GraphBuilderTest, SharedDictionaryConstructor) {
  LabelDict dict;
  Label person = dict.Intern("person");
  GraphBuilder b(dict);
  VertexId v = b.AddVertexWithLabel(person);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->vertex_label(v), person);
  EXPECT_EQ(g->dict().Find("person"), person);
}

TEST(GraphBuilderTest, MemoryBytesNonZero) {
  GraphBuilder b;
  VertexId a = b.AddVertex("x");
  VertexId c = b.AddVertex("x");
  ASSERT_TRUE(b.AddEdge(a, c, "e").ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace qgp
