#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace qgp {
namespace {

TEST(GraphStatsTest, CountsLabelsAndDegrees) {
  GraphBuilder b;
  VertexId a = b.AddVertex("p");
  VertexId c = b.AddVertex("p");
  VertexId d = b.AddVertex("q");
  (void)b.AddEdge(a, c, "x");
  (void)b.AddEdge(a, d, "x");
  (void)b.AddEdge(c, d, "y");
  Graph g = std::move(b).Build().value();

  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 3u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.num_node_labels, 2u);
  EXPECT_EQ(s.num_edge_labels, 2u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_out_degree, 1.0);
  EXPECT_EQ(s.node_label_counts.at(g.dict().Find("p")), 2u);
  EXPECT_EQ(s.edge_label_counts.at(g.dict().Find("x")), 2u);
}

TEST(GraphStatsTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = std::move(b).Build().value();
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_DOUBLE_EQ(s.avg_out_degree, 0.0);
}

TEST(GraphStatsTest, FormatMentionsTopLabels) {
  GraphBuilder b;
  b.AddVertex("person");
  b.AddVertex("person");
  b.AddVertex("product");
  Graph g = std::move(b).Build().value();
  GraphStats s = ComputeGraphStats(g);
  std::string text = FormatGraphStats(g, s);
  EXPECT_NE(text.find("person=2"), std::string::npos);
  EXPECT_NE(text.find("|V|=3"), std::string::npos);
}

}  // namespace
}  // namespace qgp
