#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace qgp {
namespace {

TEST(GraphIoTest, ParsesSimpleGraph) {
  std::istringstream in(
      "# a comment\n"
      "v 0 person\n"
      "v 1 person\n"
      "v 7 product\n"
      "\n"
      "e 0 1 follow\n"
      "e 1 7 recom\n");
  auto g = GraphIo::Read(in);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
  // File id 7 was remapped densely to 2.
  EXPECT_TRUE(g->HasEdge(1, 2, g->dict().Find("recom")));
}

TEST(GraphIoTest, RoundTrip) {
  std::istringstream in(
      "v 0 a\nv 1 b\nv 2 a\ne 0 1 x\ne 1 2 y\ne 2 0 x\n");
  auto g = GraphIo::Read(in);
  ASSERT_TRUE(g.ok());
  std::ostringstream out;
  ASSERT_TRUE(GraphIo::Write(*g, out).ok());
  std::istringstream in2(out.str());
  auto g2 = GraphIo::Read(in2);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_vertices(), g->num_vertices());
  EXPECT_EQ(g2->num_edges(), g->num_edges());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(g2->dict().Name(g2->vertex_label(v)),
              g->dict().Name(g->vertex_label(v)));
  }
}

TEST(GraphIoTest, RejectsEdgeBeforeVertex) {
  std::istringstream in("e 0 1 x\nv 0 a\nv 1 a\n");
  auto g = GraphIo::Read(in);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsDuplicateVertexId) {
  std::istringstream in("v 0 a\nv 0 b\n");
  auto g = GraphIo::Read(in);
  EXPECT_FALSE(g.ok());
}

TEST(GraphIoTest, RejectsMalformedRecords) {
  {
    std::istringstream in("v 0\n");
    EXPECT_FALSE(GraphIo::Read(in).ok());
  }
  {
    std::istringstream in("v x a\n");
    EXPECT_FALSE(GraphIo::Read(in).ok());
  }
  {
    std::istringstream in("v 0 a\nv 1 a\ne 0 1\n");
    EXPECT_FALSE(GraphIo::Read(in).ok());
  }
  {
    std::istringstream in("frob 1 2 3\n");
    EXPECT_FALSE(GraphIo::Read(in).ok());
  }
  {
    std::istringstream in("v -3 a\n");
    EXPECT_FALSE(GraphIo::Read(in).ok());
  }
}

TEST(GraphIoTest, ErrorMentionsLineNumber) {
  std::istringstream in("v 0 a\nbogus\n");
  auto g = GraphIo::Read(in);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, FileNotFound) {
  auto g = GraphIo::ReadFile("/nonexistent/path/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/qgp_io_test_graph.txt";
  std::istringstream in("v 0 a\nv 1 b\ne 0 1 x\n");
  auto g = GraphIo::Read(in);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(GraphIo::WriteFile(*g, path).ok());
  auto g2 = GraphIo::ReadFile(path);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), 1u);
}

TEST(GraphIoTest, EmptyInputYieldsEmptyGraph) {
  std::istringstream in("");
  auto g = GraphIo::Read(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
}

}  // namespace
}  // namespace qgp
