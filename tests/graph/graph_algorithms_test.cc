#include "graph/graph_algorithms.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace qgp {
namespace {

// A directed path 0 -> 1 -> 2 -> 3 -> 4 plus an isolated vertex 5.
Graph BuildPathGraph() {
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.AddVertex("n");
  for (VertexId v = 0; v + 1 < 5; ++v) {
    (void)b.AddEdge(v, v + 1, "e");
  }
  return std::move(b).Build().value();
}

TEST(KHopBallTest, UndirectedBallOnPath) {
  Graph g = BuildPathGraph();
  EXPECT_EQ(KHopBall(g, 2, 0), (std::vector<VertexId>{2}));
  EXPECT_EQ(KHopBall(g, 2, 1), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(KHopBall(g, 2, 2), (std::vector<VertexId>{0, 1, 2, 3, 4}));
  // Direction does not matter: vertex 0 reaches forward.
  EXPECT_EQ(KHopBall(g, 0, 1), (std::vector<VertexId>{0, 1}));
  // Vertex 4 reaches backward.
  EXPECT_EQ(KHopBall(g, 4, 1), (std::vector<VertexId>{3, 4}));
  // Isolated vertex.
  EXPECT_EQ(KHopBall(g, 5, 3), (std::vector<VertexId>{5}));
}

TEST(KHopBallTest, OutOfRangeSource) {
  Graph g = BuildPathGraph();
  EXPECT_TRUE(KHopBall(g, 99, 2).empty());
}

TEST(KHopBallSizeTest, CountsNodesAndInducedEdges) {
  Graph g = BuildPathGraph();
  BallSize s = KHopBallSize(g, 2, 1);
  EXPECT_EQ(s.num_vertices, 3u);
  EXPECT_EQ(s.num_edges, 2u);  // (1,2) and (2,3)
  EXPECT_EQ(s.total(), 5u);
}

TEST(BfsDistancesTest, DirectedVsUndirected) {
  Graph g = BuildPathGraph();
  auto directed = BfsDistances(g, 2, /*undirected=*/false);
  EXPECT_EQ(directed[2], 0u);
  EXPECT_EQ(directed[3], 1u);
  EXPECT_EQ(directed[4], 2u);
  EXPECT_EQ(directed[1], UINT32_MAX);  // cannot go backward
  auto undirected = BfsDistances(g, 2, /*undirected=*/true);
  EXPECT_EQ(undirected[0], 2u);
  EXPECT_EQ(undirected[4], 2u);
  EXPECT_EQ(undirected[5], UINT32_MAX);
}

TEST(ConnectedComponentsTest, TwoComponents) {
  Graph g = BuildPathGraph();
  Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.component_of[0], c.component_of[4]);
  EXPECT_NE(c.component_of[0], c.component_of[5]);
}

TEST(ConnectedComponentsTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = std::move(b).Build().value();
  Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 0u);
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  GraphBuilder b;
  VertexId a = b.AddVertex("p");
  VertexId c = b.AddVertex("q");
  VertexId d = b.AddVertex("p");
  VertexId e = b.AddVertex("q");
  (void)b.AddEdge(a, c, "x");
  (void)b.AddEdge(c, d, "x");
  (void)b.AddEdge(d, e, "x");  // crosses the cut, must be dropped
  Graph g = std::move(b).Build().value();

  std::vector<VertexId> keep{a, c, d};
  auto sub = ExtractInducedSubgraph(g, keep);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.num_vertices(), 3u);
  EXPECT_EQ(sub->graph.num_edges(), 2u);
  // Mappings are mutually inverse.
  for (VertexId lv = 0; lv < sub->graph.num_vertices(); ++lv) {
    VertexId gv = sub->local_to_global[lv];
    EXPECT_EQ(sub->global_to_local.at(gv), lv);
    EXPECT_EQ(sub->graph.vertex_label(lv), g.vertex_label(gv));
  }
}

TEST(InducedSubgraphTest, DuplicateInputIgnored) {
  Graph g = BuildPathGraph();
  std::vector<VertexId> keep{1, 2, 1, 2};
  auto sub = ExtractInducedSubgraph(g, keep);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.num_vertices(), 2u);
  EXPECT_EQ(sub->graph.num_edges(), 1u);
}

TEST(InducedSubgraphTest, OutOfRangeRejected) {
  Graph g = BuildPathGraph();
  std::vector<VertexId> keep{0, 99};
  EXPECT_FALSE(ExtractInducedSubgraph(g, keep).ok());
}

TEST(InducedSubgraphTest, SharesLabelDictionary) {
  Graph g = BuildPathGraph();
  std::vector<VertexId> keep{0, 1};
  auto sub = ExtractInducedSubgraph(g, keep);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.dict().Find("e"), g.dict().Find("e"));
  EXPECT_EQ(sub->graph.dict().Find("n"), g.dict().Find("n"));
}

}  // namespace
}  // namespace qgp
