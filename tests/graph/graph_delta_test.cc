// Delta-vs-rebuild differential harness for Graph::ApplyDelta, plus unit
// coverage of the batch semantics documented in graph/graph_delta.h. The
// oracle is a shadow model (label vector + edge set) that applies each
// delta independently and is rebuilt from scratch through GraphBuilder;
// after every batch the mutated graph must match the rebuild exactly and
// re-satisfy all CSR invariants.

#include "graph/graph_delta.h"

#include <algorithm>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gen/synthetic_gen.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace qgp {
namespace {

Graph MakeSmallGraph() {
  GraphBuilder b;
  VertexId a = b.AddVertex("person");
  VertexId c = b.AddVertex("person");
  VertexId d = b.AddVertex("page");
  VertexId e = b.AddVertex("page");
  EXPECT_TRUE(b.AddEdge(a, c, "follow").ok());
  EXPECT_TRUE(b.AddEdge(a, d, "like").ok());
  EXPECT_TRUE(b.AddEdge(c, d, "like").ok());
  EXPECT_TRUE(b.AddEdge(d, e, "link").ok());
  return std::move(b).Build().value();
}

// Independent model of the delta semantics: stage order is
// add_vertices, remove_edges, add_edges, remove_vertices.
struct ShadowGraph {
  std::vector<Label> labels;
  std::set<std::tuple<VertexId, VertexId, Label>> edges;

  static ShadowGraph Of(const Graph& g) {
    ShadowGraph s;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      s.labels.push_back(g.vertex_label(v));
      for (const Neighbor& nbr : g.OutNeighbors(v)) {
        s.edges.insert({v, nbr.v, nbr.label});
      }
    }
    return s;
  }

  bool alive(VertexId v) const {
    return v < labels.size() && labels[v] != kInvalidLabel;
  }

  void Apply(const GraphDelta& d) {
    for (Label l : d.add_vertices) labels.push_back(l);
    for (const EdgeTriple& e : d.remove_edges) {
      edges.erase({e.src, e.dst, e.label});
    }
    for (const EdgeTriple& e : d.add_edges) {
      edges.insert({e.src, e.dst, e.label});
    }
    for (VertexId v : d.remove_vertices) {
      if (!alive(v)) continue;
      labels[v] = kInvalidLabel;
      for (auto it = edges.begin(); it != edges.end();) {
        if (std::get<0>(*it) == v || std::get<1>(*it) == v) {
          it = edges.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // From-scratch rebuild with the (already mutated) graph's dict, so label
  // ids line up.
  Graph Rebuild(const LabelDict& dict) const {
    GraphBuilder b(dict);
    for (Label l : labels) b.AddVertexWithLabel(l);
    for (const auto& [src, dst, label] : edges) {
      EXPECT_TRUE(b.AddEdgeWithLabel(src, dst, label).ok());
    }
    return std::move(b).Build().value();
  }
};

// Applies `d`, checks invariants, and compares against the shadow oracle.
void ApplyAndCheck(Graph* g, ShadowGraph* shadow, const GraphDelta& d) {
  const uint64_t version_before = g->version();
  auto summary = g->ApplyDelta(d);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(g->version(), version_before + 1);
  EXPECT_EQ(summary->version, g->version());
  Status invariants = g->ValidateInvariants();
  ASSERT_TRUE(invariants.ok()) << invariants.ToString();
  shadow->Apply(d);
  Graph rebuilt = shadow->Rebuild(g->dict());
  ASSERT_TRUE(ContentEquals(*g, rebuilt));
}

TEST(GraphDelta, AddAndRemoveEdges) {
  Graph g = MakeSmallGraph();
  ShadowGraph shadow = ShadowGraph::Of(g);
  Label follow = g.dict().Find("follow");
  Label like = g.dict().Find("like");

  GraphDelta d;
  d.add_edges.push_back({1, 0, follow});
  d.remove_edges.push_back({0, 2, like});
  ApplyAndCheck(&g, &shadow, d);
  EXPECT_TRUE(g.HasEdge(1, 0, follow));
  EXPECT_FALSE(g.HasEdge(0, 2, like));
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(GraphDelta, SetSemanticsNoOps) {
  Graph g = MakeSmallGraph();
  ShadowGraph shadow = ShadowGraph::Of(g);
  Label follow = g.dict().Find("follow");

  GraphDelta d;
  d.add_edges.push_back({0, 1, follow});        // already present
  d.add_edges.push_back({0, 1, follow});        // duplicate in batch
  d.remove_edges.push_back({3, 0, follow});     // absent
  auto summary = g.ApplyDelta(d);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->Empty());
  EXPECT_EQ(g.num_edges(), 4u);
  shadow.Apply(d);
  EXPECT_TRUE(ContentEquals(g, shadow.Rebuild(g.dict())));
}

TEST(GraphDelta, EmptyDeltaStillBumpsVersion) {
  Graph g = MakeSmallGraph();
  EXPECT_EQ(g.version(), 0u);
  auto summary = g.ApplyDelta(GraphDelta{});
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->Empty());
  EXPECT_EQ(g.version(), 1u);
}

TEST(GraphDelta, RemoveThenAddSameEdgeInOneBatchKeepsIt) {
  Graph g = MakeSmallGraph();
  ShadowGraph shadow = ShadowGraph::Of(g);
  Label follow = g.dict().Find("follow");

  // Stage order: removes apply before adds, so remove+add of a present
  // edge keeps it (and nets to a no-op summary); remove+add of an absent
  // edge adds it.
  GraphDelta d;
  d.remove_edges.push_back({0, 1, follow});
  d.add_edges.push_back({0, 1, follow});
  d.remove_edges.push_back({2, 0, follow});
  d.add_edges.push_back({2, 0, follow});
  auto summary = g.ApplyDelta(d);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->edges_added.size(), 1u);
  EXPECT_EQ(summary->edges_added[0], (EdgeTriple{2, 0, follow}));
  EXPECT_TRUE(summary->edges_removed.empty());
  EXPECT_TRUE(g.HasEdge(0, 1, follow));
  EXPECT_TRUE(g.HasEdge(2, 0, follow));
  shadow.Apply(d);
  EXPECT_TRUE(ContentEquals(g, shadow.Rebuild(g.dict())));
}

TEST(GraphDelta, AddVerticesAssignsSequentialIds) {
  Graph g = MakeSmallGraph();
  ShadowGraph shadow = ShadowGraph::Of(g);
  Label person = g.dict().Find("person");
  Label follow = g.dict().Find("follow");

  GraphDelta d;
  d.add_vertices = {person, person};
  d.add_edges.push_back({4, 5, follow});  // both added this batch
  d.add_edges.push_back({0, 4, follow});  // old -> new
  ApplyAndCheck(&g, &shadow, d);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.vertex_label(4), person);
  EXPECT_TRUE(g.HasEdge(4, 5, follow));
  EXPECT_TRUE(g.HasEdge(0, 4, follow));
  // Label index picked up the new vertices.
  std::span<const VertexId> people = g.VerticesWithLabel(person);
  EXPECT_TRUE(std::find(people.begin(), people.end(), 4u) != people.end());
}

TEST(GraphDelta, TombstoneDropsIncidentEdgesAndKeepsIds) {
  Graph g = MakeSmallGraph();
  ShadowGraph shadow = ShadowGraph::Of(g);

  GraphDelta d;
  d.remove_vertices.push_back(2);  // "page" with in-edges from 0,1, out to 3
  const uint64_t before_m = g.num_edges();
  auto summary = g.ApplyDelta(d);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->vertices_removed.size(), 1u);
  EXPECT_EQ(summary->vertices_removed[0].second, g.dict().Find("page"));
  EXPECT_EQ(summary->edges_removed.size(), 3u);
  EXPECT_EQ(g.num_vertices(), 4u);  // id space unchanged
  EXPECT_EQ(g.num_edges(), before_m - 3);
  EXPECT_EQ(g.vertex_label(2), kInvalidLabel);
  EXPECT_TRUE(g.ValidateInvariants().ok());
  shadow.Apply(d);
  EXPECT_TRUE(ContentEquals(g, shadow.Rebuild(g.dict())));

  // Tombstoning again is a no-op.
  auto again = g.ApplyDelta(d);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Empty());
}

TEST(GraphDelta, RemoveVertexAddedInSameBatch) {
  Graph g = MakeSmallGraph();
  ShadowGraph shadow = ShadowGraph::Of(g);
  Label person = g.dict().Find("person");
  Label follow = g.dict().Find("follow");

  GraphDelta d;
  d.add_vertices = {person};
  d.add_edges.push_back({0, 4, follow});
  d.remove_vertices.push_back(4);
  auto summary = g.ApplyDelta(d);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->vertices_added.size(), 1u);
  EXPECT_EQ(summary->vertices_removed.size(), 1u);
  EXPECT_TRUE(summary->edges_added.empty());  // never materialized
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.vertex_label(4), kInvalidLabel);
  EXPECT_FALSE(g.HasEdge(0, 4, follow));
  shadow.Apply(d);
  EXPECT_TRUE(ContentEquals(g, shadow.Rebuild(g.dict())));
}

TEST(GraphDelta, ErrorsLeaveGraphUntouched) {
  Graph g = MakeSmallGraph();
  Graph pristine = g;
  Label follow = g.dict().Find("follow");

  GraphDelta out_of_range;
  out_of_range.add_edges.push_back({0, 99, follow});
  EXPECT_FALSE(g.ApplyDelta(out_of_range).ok());

  GraphDelta bad_label;
  bad_label.add_edges.push_back({0, 1, kInvalidLabel});
  EXPECT_FALSE(g.ApplyDelta(bad_label).ok());

  GraphDelta bad_remove;
  bad_remove.remove_vertices.push_back(99);
  EXPECT_FALSE(g.ApplyDelta(bad_remove).ok());

  // Partially valid batch: the valid ops must not leak through.
  GraphDelta mixed;
  mixed.add_edges.push_back({1, 0, follow});
  mixed.add_edges.push_back({0, 77, follow});
  EXPECT_FALSE(g.ApplyDelta(mixed).ok());

  EXPECT_EQ(g.version(), 0u);
  EXPECT_TRUE(ContentEquals(g, pristine));
}

TEST(GraphDelta, EdgeToTombstoneRejected) {
  Graph g = MakeSmallGraph();
  GraphDelta kill;
  kill.remove_vertices.push_back(3);
  ASSERT_TRUE(g.ApplyDelta(kill).ok());

  GraphDelta d;
  d.add_edges.push_back({0, 3, g.dict().Find("follow")});
  auto result = g.ApplyDelta(d);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphDelta, ResolveDeltaInternsAddsButNotRemoves) {
  Graph g = MakeSmallGraph();
  const size_t dict_before = g.dict().size();
  NamedGraphDelta named;
  named.add_vertices.push_back("robot");
  named.add_edges.push_back({0, 1, "pokes"});
  named.remove_edges.push_back({0, 1, "never_seen"});
  GraphDelta delta = ResolveDelta(named, &g.mutable_dict());
  EXPECT_EQ(g.dict().size(), dict_before + 2);  // robot, pokes
  EXPECT_EQ(delta.remove_edges[0].label, kInvalidLabel);  // unknown: no-op

  ShadowGraph shadow = ShadowGraph::Of(g);
  // remove_edges with kInvalidLabel never matches an edge.
  GraphDelta applied = delta;
  applied.remove_edges.clear();
  ApplyAndCheck(&g, &shadow, applied);
  EXPECT_EQ(g.vertex_label(4), g.dict().Find("robot"));
  std::span<const VertexId> robots =
      g.VerticesWithLabel(g.dict().Find("robot"));
  ASSERT_EQ(robots.size(), 1u);
  EXPECT_EQ(robots[0], 4u);
}

TEST(GraphDelta, TouchedVerticesFiltersByLabel) {
  GraphDeltaSummary s;
  s.edges_added.push_back({0, 1, 5});
  s.edges_removed.push_back({2, 3, 7});
  s.vertices_added.emplace_back(9, 1);
  s.vertices_removed.emplace_back(8, 2);

  std::vector<VertexId> all =
      TouchedVertices(s, nullptr, nullptr, /*additions_only=*/false);
  EXPECT_EQ(all, (std::vector<VertexId>{0, 1, 2, 3, 8, 9}));

  std::vector<VertexId> gains =
      TouchedVertices(s, nullptr, nullptr, /*additions_only=*/true);
  EXPECT_EQ(gains, (std::vector<VertexId>{0, 1, 9}));

  DynamicBitset edge_labels(8);
  edge_labels.Set(7);
  DynamicBitset node_labels(4);
  node_labels.Set(2);
  std::vector<VertexId> filtered =
      TouchedVertices(s, &edge_labels, &node_labels, /*additions_only=*/false);
  EXPECT_EQ(filtered, (std::vector<VertexId>{2, 3, 8}));
}

// ---------------------------------------------------------------------------
// Randomized differential sweep: >= 100 delta batches across two base
// graphs, each validated against the shadow-rebuild oracle and the CSR
// invariant checker. Batches mix edge/vertex inserts and deletes with
// deliberate no-ops (re-adds, absent removes, dead tombstones).
// ---------------------------------------------------------------------------

GraphDelta RandomDelta(const ShadowGraph& shadow, Graph* g,
                       std::mt19937* rng) {
  GraphDelta d;
  std::vector<VertexId> alive;
  for (VertexId v = 0; v < shadow.labels.size(); ++v) {
    if (shadow.alive(v)) alive.push_back(v);
  }
  std::vector<std::tuple<VertexId, VertexId, Label>> edges(
      shadow.edges.begin(), shadow.edges.end());
  auto rand_label = [&](bool node) {
    // Existing generator labels plus occasionally a brand-new interned one.
    if ((*rng)() % 8 == 0) {
      return g->mutable_dict().Intern("fresh" + std::to_string((*rng)() % 4));
    }
    return g->dict().Find((node ? "nl" : "el") + std::to_string((*rng)() % 3));
  };
  const size_t ops = 1 + (*rng)() % 8;
  size_t pending_new = 0;
  for (size_t i = 0; i < ops; ++i) {
    switch ((*rng)() % 10) {
      case 0:  // add vertex
      case 1:
        d.add_vertices.push_back(rand_label(true));
        ++pending_new;
        break;
      case 2: {  // remove vertex (sometimes already dead / repeated)
        if (alive.empty()) break;
        d.remove_vertices.push_back(alive[(*rng)() % alive.size()]);
        break;
      }
      case 3:  // remove an existing edge
      case 4: {
        if (edges.empty()) break;
        auto [src, dst, label] = edges[(*rng)() % edges.size()];
        d.remove_edges.push_back({src, dst, label});
        break;
      }
      case 5: {  // remove an absent edge (no-op)
        if (alive.size() < 2) break;
        d.remove_edges.push_back({alive[(*rng)() % alive.size()],
                                  alive[(*rng)() % alive.size()],
                                  rand_label(false)});
        break;
      }
      case 6: {  // re-add an existing edge (no-op)
        if (edges.empty()) break;
        auto [src, dst, label] = edges[(*rng)() % edges.size()];
        d.add_edges.push_back({src, dst, label});
        break;
      }
      default: {  // add a random edge, possibly to a just-added vertex
        if (alive.empty()) break;
        VertexId src = alive[(*rng)() % alive.size()];
        VertexId dst = alive[(*rng)() % alive.size()];
        if (pending_new > 0 && (*rng)() % 4 == 0) {
          dst = static_cast<VertexId>(shadow.labels.size() +
                                      (*rng)() % pending_new);
        }
        Label l = rand_label(false);
        if (l == kInvalidLabel) break;
        d.add_edges.push_back({src, dst, l});
        break;
      }
    }
  }
  return d;
}

TEST(GraphDeltaDifferential, RandomizedBatchesMatchRebuild) {
  for (uint64_t seed : {7u, 21u}) {
    SyntheticConfig config;
    config.num_vertices = 60;
    config.num_edges = 150;
    config.num_node_labels = 3;
    config.num_edge_labels = 3;
    config.seed = seed;
    config.model = (seed % 2 == 1) ? SyntheticConfig::Model::kSmallWorld
                                   : SyntheticConfig::Model::kPowerLaw;
    Graph g = GenerateSynthetic(config).value();
    ASSERT_TRUE(g.ValidateInvariants().ok());
    ShadowGraph shadow = ShadowGraph::Of(g);
    std::mt19937 rng(seed * 977);
    for (int batch = 0; batch < 60; ++batch) {
      GraphDelta d = RandomDelta(shadow, &g, &rng);
      ApplyAndCheck(&g, &shadow, d);
    }
    EXPECT_EQ(g.version(), 60u);
  }
}

TEST(GraphDeltaDifferential, EdgeInversePairsRoundTrip) {
  SyntheticConfig config;
  config.num_vertices = 40;
  config.num_edges = 100;
  config.num_node_labels = 3;
  config.num_edge_labels = 3;
  config.seed = 11;
  Graph g = GenerateSynthetic(config).value();
  // Pre-intern the labels RandomDelta may mint so the pristine copy's dict
  // stays identical to the mutated graph's.
  for (int i = 0; i < 4; ++i) {
    g.mutable_dict().Intern("fresh" + std::to_string(i));
  }
  Graph pristine = g;
  std::mt19937 rng(1234);
  ShadowGraph shadow = ShadowGraph::Of(g);
  for (int round = 0; round < 20; ++round) {
    // Edge-only delta, then its inverse: content must round-trip.
    GraphDelta d = RandomDelta(shadow, &g, &rng);
    d.add_vertices.clear();
    d.remove_vertices.clear();
    const VertexId n = static_cast<VertexId>(shadow.labels.size());
    auto dangling = [n](const EdgeTriple& e) { return e.src >= n || e.dst >= n; };
    std::erase_if(d.add_edges, dangling);
    std::erase_if(d.remove_edges, dangling);
    auto summary = g.ApplyDelta(d);
    ASSERT_TRUE(summary.ok());
    GraphDelta inverse;
    inverse.add_edges = summary->edges_removed;
    inverse.remove_edges = summary->edges_added;
    auto back = g.ApplyDelta(inverse);
    ASSERT_TRUE(back.ok());
    ASSERT_TRUE(g.ValidateInvariants().ok());
    ASSERT_TRUE(ContentEquals(g, pristine));
  }
  EXPECT_EQ(g.version(), 40u);
}

}  // namespace
}  // namespace qgp
