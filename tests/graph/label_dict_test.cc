#include "graph/label_dict.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qgp {
namespace {

TEST(LabelDictTest, StartsEmpty) {
  LabelDict dict;
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_EQ(dict.Find("follow"), kInvalidLabel);
  EXPECT_FALSE(dict.Contains("follow"));
}

TEST(LabelDictTest, InternAssignsDenseIds) {
  LabelDict dict;
  Label a = dict.Intern("follow");
  Label b = dict.Intern("recom");
  Label c = dict.Intern("bad_rating");
  EXPECT_NE(a, kInvalidLabel);
  EXPECT_NE(b, kInvalidLabel);
  EXPECT_NE(c, kInvalidLabel);
  // Dense: three distinct ids, all below size().
  EXPECT_EQ(dict.size(), 3u);
  std::vector<Label> ids = {a, b, c};
  for (Label id : ids) EXPECT_LT(static_cast<size_t>(id), dict.size());
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(LabelDictTest, InternIsIdempotent) {
  LabelDict dict;
  Label first = dict.Intern("prof");
  Label second = dict.Intern("prof");
  EXPECT_EQ(first, second);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(LabelDictTest, FindMatchesIntern) {
  LabelDict dict;
  Label follow = dict.Intern("follow");
  EXPECT_EQ(dict.Find("follow"), follow);
  EXPECT_TRUE(dict.Contains("follow"));
  EXPECT_EQ(dict.Find("nope"), kInvalidLabel);
  EXPECT_FALSE(dict.Contains("nope"));
}

TEST(LabelDictTest, NameRoundTrips) {
  LabelDict dict;
  Label follow = dict.Intern("follow");
  Label recom = dict.Intern("recom");
  EXPECT_EQ(dict.Name(follow), "follow");
  EXPECT_EQ(dict.Name(recom), "recom");
}

TEST(LabelDictTest, NameOfOutOfRangeIdIsInvalidMarker) {
  LabelDict dict;
  (void)dict.Intern("only");
  EXPECT_EQ(dict.Name(static_cast<Label>(99)), "<invalid>");
  EXPECT_EQ(dict.Name(kInvalidLabel), "<invalid>");
}

TEST(LabelDictTest, EmptyStringIsAnOrdinaryLabel) {
  LabelDict dict;
  Label empty = dict.Intern("");
  EXPECT_NE(empty, kInvalidLabel);
  EXPECT_TRUE(dict.Contains(""));
  EXPECT_EQ(dict.Name(empty), "");
  EXPECT_EQ(dict.Intern(""), empty);
}

TEST(LabelDictTest, ScalesToManyLabels) {
  LabelDict dict;
  std::vector<Label> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(dict.Intern("label_" + std::to_string(i)));
  }
  EXPECT_EQ(dict.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    std::string name = "label_" + std::to_string(i);
    EXPECT_EQ(dict.Find(name), ids[i]);
    EXPECT_EQ(dict.Name(ids[i]), name);
  }
}

TEST(LabelDictTest, CopiesAreIndependent) {
  LabelDict dict;
  Label a = dict.Intern("a");
  LabelDict copy = dict;
  Label b = copy.Intern("b");
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.Find("a"), a);
  EXPECT_NE(b, kInvalidLabel);
}

}  // namespace
}  // namespace qgp
