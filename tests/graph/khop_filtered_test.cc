#include <gtest/gtest.h>

#include "graph/graph_algorithms.h"
#include "graph/graph_builder.h"

namespace qgp {
namespace {

// Star hub: center 0 with spokes 1..N via label "a", plus a chain
// 0 -b-> N+1 -b-> N+2.
struct HubFixture {
  Graph g;
  Label a, b;
  size_t spokes = 50;

  HubFixture() {
    GraphBuilder builder;
    for (size_t i = 0; i < spokes + 3; ++i) builder.AddVertex("n");
    for (size_t i = 1; i <= spokes; ++i) {
      (void)builder.AddEdge(0, static_cast<VertexId>(i), "a");
    }
    (void)builder.AddEdge(0, static_cast<VertexId>(spokes + 1), "b");
    (void)builder.AddEdge(static_cast<VertexId>(spokes + 1),
                          static_cast<VertexId>(spokes + 2), "b");
    g = std::move(builder).Build().value();
    a = g.dict().Find("a");
    b = g.dict().Find("b");
  }

  DynamicBitset Only(Label l) const {
    DynamicBitset bits(g.dict().size());
    bits.Set(l);
    return bits;
  }
};

TEST(KHopBallFilteredTest, LabelFilterSkipsOtherEdges) {
  HubFixture f;
  bool complete = false;
  auto ball =
      KHopBallFiltered(f.g, 0, 2, f.Only(f.b), 1000, &complete);
  EXPECT_TRUE(complete);
  // Only the b-chain is reachable.
  EXPECT_EQ(ball, (std::vector<VertexId>{
                      0, static_cast<VertexId>(f.spokes + 1),
                      static_cast<VertexId>(f.spokes + 2)}));
}

TEST(KHopBallFilteredTest, AllLabelsMatchesUnfilteredBall) {
  HubFixture f;
  DynamicBitset all(f.g.dict().size());
  all.Set(f.a);
  all.Set(f.b);
  bool complete = false;
  auto filtered = KHopBallFiltered(f.g, 0, 2, all, 1'000'000, &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(filtered, KHopBall(f.g, 0, 2));
}

TEST(KHopBallFilteredTest, HubGuardAborts) {
  HubFixture f;
  bool complete = true;
  auto ball = KHopBallFiltered(f.g, 0, 2, f.Only(f.a), 10, &complete);
  EXPECT_FALSE(complete);
  EXPECT_GT(ball.size(), 10u);  // partial, just past the limit
  EXPECT_LT(ball.size(), f.spokes + 1);
}

TEST(KHopBallFilteredTest, DepthZero) {
  HubFixture f;
  bool complete = false;
  auto ball = KHopBallFiltered(f.g, 3, 0, f.Only(f.a), 10, &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(ball, (std::vector<VertexId>{3}));
}

TEST(KHopBallFilteredTest, TraversesEdgesBackwards) {
  HubFixture f;
  bool complete = false;
  // From a spoke, the hub is one undirected hop away via an in-edge.
  auto ball = KHopBallFiltered(f.g, 1, 1, f.Only(f.a), 1000, &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(ball, (std::vector<VertexId>{0, 1}));
}

}  // namespace
}  // namespace qgp
