// QGAR mining (§6 / Exp-3): mine quantified association rules from a
// generated social graph and print them with support and confidence.
//
//   ./examples/rule_mining [num_users] [eta]
#include <cstdio>
#include <cstdlib>

#include "core/pattern_parser.h"
#include "gen/social_gen.h"
#include "qgar/miner.h"

int main(int argc, char** argv) {
  size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  double eta = argc > 2 ? std::atof(argv[2]) : 0.5;

  qgp::SocialConfig config;
  config.num_users = num_users;
  qgp::Graph g = std::move(qgp::GenerateSocialGraph(config)).value();
  std::printf("graph: %zu vertices, %zu edges; eta = %.2f\n",
              g.num_vertices(), g.num_edges(), eta);

  qgp::MinerConfig mc;
  mc.min_confidence = eta;
  mc.min_support = 20;
  mc.max_rules = 5;
  auto rules = qgp::MineQgars(g, mc);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  if (rules->empty()) {
    std::printf("no rules met support >= %zu and confidence >= %.2f\n",
                mc.min_support, mc.min_confidence);
    return 0;
  }
  std::printf("mined %zu rules:\n\n", rules->size());
  for (const qgp::MinedRule& r : *rules) {
    std::printf("=== %s  (support %zu, confidence %.3f)\n",
                r.rule.name.c_str(), r.support, r.confidence);
    std::printf("IF\n%s", qgp::PatternParser::Serialize(
                              r.rule.antecedent, g.dict()).c_str());
    std::printf("THEN\n%s\n", qgp::PatternParser::Serialize(
                                  r.rule.consequent, g.dict()).c_str());
  }
  return 0;
}
