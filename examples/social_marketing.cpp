// Social media marketing (the paper's §1 motivation): generate a
// Pokec-like social graph, define the QGAR
//     R1: "in a club AND >= 60% of followees like an album  =>  like it"
// and identify potential customers with garMatch.
//
//   ./examples/social_marketing [num_users]
#include <cstdio>
#include <cstdlib>

#include "core/pattern_parser.h"
#include "gen/social_gen.h"
#include "qgar/gar_match.h"

int main(int argc, char** argv) {
  size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;

  qgp::SocialConfig config;
  config.num_users = num_users;
  auto graph = qgp::GenerateSocialGraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  qgp::Graph g = std::move(graph).value();
  std::printf("social graph: %zu vertices, %zu edges\n", g.num_vertices(),
              g.num_edges());

  qgp::Qgar rule;
  rule.name = "R1-album";
  auto antecedent = qgp::PatternParser::Parse(R"(
      node xo person
      node c  club
      node z  person
      node y  album
      edge xo c in
      edge xo z follow >=60%
      edge z  y like
      focus xo
  )", g.mutable_dict());
  auto consequent = qgp::PatternParser::Parse(R"(
      node xo person
      node y2 album
      edge xo y2 like
      focus xo
  )", g.mutable_dict());
  if (!antecedent.ok() || !consequent.ok()) {
    std::fprintf(stderr, "pattern parse error\n");
    return 1;
  }
  rule.antecedent = std::move(antecedent).value();
  rule.consequent = std::move(consequent).value();

  const double eta = 0.5;
  auto result = qgp::GarMatch(rule, g, eta);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("rule %s:\n", rule.name.c_str());
  std::printf("  |Q1(xo,G)|      = %zu  (users matching the antecedent)\n",
              result->q1_answers.size());
  std::printf("  |Q2(xo,G)|      = %zu  (users already liking an album)\n",
              result->q2_answers.size());
  std::printf("  support         = %zu\n", result->support);
  std::printf("  confidence      = %.3f (eta = %.2f)\n", result->confidence,
              eta);
  std::printf("  identified      = %zu potential customers\n",
              result->entities.size());
  if (!result->entities.empty()) {
    std::printf("  first few      :");
    for (size_t i = 0; i < result->entities.size() && i < 8; ++i) {
      std::printf(" user%u", result->entities[i]);
    }
    std::printf("\n");
  }
  return 0;
}
