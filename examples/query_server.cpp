// Query server scenario, end to end over TCP: boots the network query
// service (src/service/query_service.h) on a loopback port, then drives
// it as a real client — the ROADMAP's "network-facing query service"
// story as a runnable walkthrough.
//
// The driver:
//   1. generates a Pokec-like social graph, constructs a QueryEngine
//      over it and starts a QueryService on an ephemeral 127.0.0.1 port;
//   2. builds a request mix from two pattern families and serves it
//      twice through a ServiceClient — a cold pass (empty cache) and a
//      warm pass — printing a per-request client log with latency and
//      cache hits;
//   3. pipelines the warm pass (all requests sent before the first
//      response is read) to show per-connection response ordering;
//   4. polls the stats op from a second connection while queries run,
//      and prints the final engine + service telemetry.
//
// Robustness: every connection carries connect/read timeouts and every
// query a generous end-to-end deadline, so a server that dies or wedges
// mid-session surfaces a clean structured diagnostic here instead of
// hanging the client forever; queries go through CallWithRetry (they
// are idempotent), so a transient Unavailable is retried with backoff.
//
//   ./examples/query_server [num_users]
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/pattern_parser.h"
#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/social_gen.h"
#include "service/client.h"
#include "service/query_service.h"

using namespace qgp;
using service::ServiceClient;
using service::ServiceRequest;
using service::ServiceResponse;

namespace {

// The request mix: two §7-style pattern families (different sizes and
// quantifiers) interleaved the way concurrent clients would mix them,
// serialized to the PatternParser DSL the wire protocol carries.
std::vector<ServiceRequest> MakeWorkload(Graph& g) {
  PatternGenConfig family_a;
  family_a.num_nodes = 4;
  family_a.num_edges = 5;
  family_a.num_quantified = 2;
  family_a.percent = 30.0;
  family_a.num_negated = 0;
  PatternGenConfig family_b = family_a;
  family_b.num_nodes = 5;
  family_b.num_edges = 6;
  family_b.num_quantified = 1;
  family_b.num_negated = 1;

  std::vector<Pattern> a = GeneratePatternSuite(g, 6, family_a, 1001);
  std::vector<Pattern> b = GeneratePatternSuite(g, 6, family_b, 2002);
  std::vector<ServiceRequest> workload;
  for (size_t i = 0; i < a.size() || i < b.size(); ++i) {
    if (i < a.size()) {
      ServiceRequest r;
      r.pattern_text = PatternParser::Serialize(a[i], g.dict());
      r.tag = "familyA/" + std::to_string(i);
      // End-to-end budget (queue wait included): far above any sane
      // evaluation time, so it only fires if the server wedges.
      r.timeout_ms = 30000;
      workload.push_back(std::move(r));
    }
    if (i < b.size()) {
      ServiceRequest r;
      r.pattern_text = PatternParser::Serialize(b[i], g.dict());
      r.tag = "familyB/" + std::to_string(i);
      r.timeout_ms = 30000;
      workload.push_back(std::move(r));
    }
  }
  return workload;
}

// Serves the workload request by request over one connection, like a
// client draining its queue. Fills `answers` with the per-request
// answer sets; errors propagate to the caller (no exit from helpers —
// destructors of the service and engine must run).
Status Serve(ServiceClient& client, const std::vector<ServiceRequest>& workload,
             const char* pass, std::vector<AnswerSet>* answers) {
  for (const ServiceRequest& request : workload) {
    // Queries are idempotent: safe to replay on a transient Unavailable
    // (admission rejection, dropped connection) under the client's
    // retry policy.
    QGP_ASSIGN_OR_RETURN(ServiceResponse response,
                         client.CallWithRetry(request));
    if (!response.ok) {
      return Status::Internal(request.tag + ": server error " +
                              response.error_code + ": " +
                              response.error_message);
    }
    std::printf(
        "[%s] %-10s answers=%4zu  %7.2f ms  cache %llu hit / %llu miss%s\n",
        pass, response.tag.c_str(), response.answers.size(), response.wall_ms,
        static_cast<unsigned long long>(response.cache_hits),
        static_cast<unsigned long long>(response.cache_misses),
        response.result_cache_hit ? "  [result cache]" : "");
    answers->push_back(std::move(response.answers));
  }
  return Status::Ok();
}

// The warm pass again, pipelined: every request is written before the
// first response is read. The reorder buffer guarantees responses come
// back in request order, so pairing them back up is positional.
Status ServePipelined(ServiceClient& client,
                      const std::vector<ServiceRequest>& workload,
                      std::vector<AnswerSet>* answers) {
  for (const ServiceRequest& request : workload) {
    QGP_RETURN_IF_ERROR(client.Send(request));
  }
  for (const ServiceRequest& request : workload) {
    QGP_ASSIGN_OR_RETURN(ServiceResponse response, client.ReadResponse());
    if (!response.ok) {
      return Status::Internal(request.tag + ": server error " +
                              response.error_code + ": " +
                              response.error_message);
    }
    if (response.tag != request.tag) {
      return Status::Internal("response order violated: sent " + request.tag +
                              ", got " + response.tag);
    }
    answers->push_back(std::move(response.answers));
  }
  return Status::Ok();
}

Status Run(size_t num_users) {
  SocialConfig config;
  config.num_users = num_users;
  config.seed = 7;
  QGP_ASSIGN_OR_RETURN(Graph g, GenerateSocialGraph(config));
  std::printf("graph: |V|=%zu |E|=%zu\n", g.num_vertices(), g.num_edges());

  std::vector<ServiceRequest> workload = MakeWorkload(g);
  std::printf("workload: %zu requests from 2 pattern families\n",
              workload.size());

  EngineOptions options;
  options.enable_result_cache = true;  // serve repeat requests from memory
  QueryEngine engine(std::move(g), options);
  service::ServiceOptions service_options;
  // The pipelined pass bursts the whole workload on one connection;
  // leave headroom over the default per-client in-flight limit of 8
  // (at the default, the burst's tail would get "Unavailable" — the
  // admission tests cover that path).
  service_options.max_inflight_per_client = workload.size() + 1;
  service::QueryService server(&engine, service_options);
  QGP_RETURN_IF_ERROR(server.Start());
  std::printf("service: 127.0.0.1:%d\n\n", server.port());

  // Connection-level bounds: a dead server fails the connect within
  // 5 s, and a server that stops responding mid-session fails the
  // pending read with kDeadlineExceeded after 30 s — either way the
  // example exits with a diagnostic instead of hanging.
  service::ClientOptions client_options;
  client_options.connect_timeout_ms = 5000;
  client_options.read_timeout_ms = 30000;
  client_options.retry.max_attempts = 3;

  {
    QGP_ASSIGN_OR_RETURN(ServiceClient client,
                         ServiceClient::Connect(server.port(), "127.0.0.1",
                                                client_options));
    // Cold pass: every label/degree filter is computed for the first
    // time. Warm pass: the same requests again — a server's steady
    // state, answered from the result cache; answers must be identical.
    std::vector<AnswerSet> cold, warm, pipelined;
    QGP_RETURN_IF_ERROR(Serve(client, workload, "cold", &cold));
    QGP_RETURN_IF_ERROR(Serve(client, workload, "warm", &warm));
    if (cold != warm) {
      return Status::Internal("warm-cache answers differ from cold run");
    }
    QGP_RETURN_IF_ERROR(ServePipelined(client, workload, &pipelined));
    if (cold != pipelined) {
      return Status::Internal("pipelined answers differ from serial run");
    }
    std::printf("\nwarm == cold == pipelined answers: OK\n");

    // Telemetry from a second connection — the stats op never queues
    // behind query traffic, so a monitor sees fresh numbers on demand.
    QGP_ASSIGN_OR_RETURN(ServiceClient monitor,
                         ServiceClient::Connect(server.port(), "127.0.0.1",
                                                client_options));
    ServiceRequest stats_request;
    stats_request.op = ServiceRequest::Op::kStats;
    QGP_ASSIGN_OR_RETURN(ServiceResponse stats, monitor.Call(stats_request));
    std::printf("stats op: %s\n", stats.body.Dump().c_str());
  }

  server.Stop();
  const EngineStats es = engine.stats();
  std::printf("\nengine totals: queries=%llu wall=%.1f ms\n",
              static_cast<unsigned long long>(es.queries), es.wall_ms);
  std::printf("candidate cache: %llu hits / %llu misses (hit ratio %.2f)\n",
              static_cast<unsigned long long>(es.cache_hits),
              static_cast<unsigned long long>(es.cache_misses), es.HitRatio());
  std::printf("result cache   : %llu hits / %llu misses (hit ratio %.2f)\n",
              static_cast<unsigned long long>(es.result_hits),
              static_cast<unsigned long long>(es.result_misses),
              es.ResultHitRatio());
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t num_users = 2000;
  if (argc > 1 && (!ParseInt64(argv[1], &num_users) || num_users < 1)) {
    std::fprintf(stderr, "usage: %s [num_users]  (positive integer, got %s)\n",
                 argv[0], argv[1]);
    return 2;
  }
  Status status = Run(static_cast<size_t>(num_users));
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
