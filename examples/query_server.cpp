// Query server scenario: one long-lived QueryEngine serving a stream of
// quantified-pattern requests against a loaded social graph — the
// ROADMAP's "multi-pattern workloads sharing one CandidateCache" story,
// as a runnable walkthrough.
//
// The driver:
//   1. generates a Pokec-like social graph and constructs an engine
//      over it (shared CandidateCache + ThreadPool, engine-lifetime);
//   2. builds a request mix from two pattern families and serves it
//      twice — a cold pass (empty cache) and a warm pass (same engine)
//      — printing a per-request server log with latency and cache hits;
//   3. interleaves an EvictUnused() pressure event mid-stream and shows
//      answers are unaffected;
//   4. prints the cumulative engine stats (hit ratio, wall time).
//
//   ./examples/query_server [num_users]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/social_gen.h"

using namespace qgp;

namespace {

std::vector<QuerySpec> MakeWorkload(const Graph& g) {
  // Two §7-style pattern families (different sizes and quantifiers),
  // interleaved the way concurrent clients would mix them. Patterns in
  // one family share node/edge-label structure, so their label/degree
  // candidate filters intern into the same cache entries.
  PatternGenConfig family_a;
  family_a.num_nodes = 4;
  family_a.num_edges = 5;
  family_a.num_quantified = 2;
  family_a.percent = 30.0;
  family_a.num_negated = 0;
  PatternGenConfig family_b = family_a;
  family_b.num_nodes = 5;
  family_b.num_edges = 6;
  family_b.num_quantified = 1;
  family_b.num_negated = 1;

  std::vector<Pattern> a = GeneratePatternSuite(g, 6, family_a, 1001);
  std::vector<Pattern> b = GeneratePatternSuite(g, 6, family_b, 2002);
  std::vector<QuerySpec> workload;
  for (size_t i = 0; i < a.size() || i < b.size(); ++i) {
    if (i < a.size()) {
      QuerySpec s;
      s.pattern = a[i];
      s.tag = "familyA/" + std::to_string(i);
      workload.push_back(std::move(s));
    }
    if (i < b.size()) {
      QuerySpec s;
      s.pattern = b[i];
      s.tag = "familyB/" + std::to_string(i);
      workload.push_back(std::move(s));
    }
  }
  return workload;
}

// Serves the workload request by request, like a server draining its
// queue, evicting unused cache entries halfway through (a memory
// pressure event). Returns the per-request answers.
std::vector<AnswerSet> Serve(QueryEngine& engine,
                             const std::vector<QuerySpec>& workload,
                             const char* pass) {
  std::vector<AnswerSet> answers;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (i == workload.size() / 2) {
      size_t evicted = engine.EvictUnused();
      std::printf("[%s] -- cache pressure: evicted %zu unused sets --\n",
                  pass, evicted);
    }
    auto outcome = engine.Submit(workload[i]);
    if (!outcome.ok()) {
      std::printf("[%s] %s FAILED: %s\n", pass, workload[i].tag.c_str(),
                  outcome.status().ToString().c_str());
      std::exit(1);
    }
    std::printf(
        "[%s] %-10s answers=%4zu  %7.2f ms  cache %llu hit / %llu miss%s\n",
        pass, outcome->tag.c_str(), outcome->answers.size(), outcome->wall_ms,
        static_cast<unsigned long long>(outcome->cache_hits),
        static_cast<unsigned long long>(outcome->cache_misses),
        outcome->result_cache_hit ? "  [result cache]" : "");
    answers.push_back(std::move(outcome->answers));
  }
  return answers;
}

}  // namespace

int main(int argc, char** argv) {
  SocialConfig config;
  config.num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  config.seed = 7;
  Graph g = std::move(GenerateSocialGraph(config)).value();
  std::printf("graph: |V|=%zu |E|=%zu\n", g.num_vertices(), g.num_edges());

  std::vector<QuerySpec> workload = MakeWorkload(g);
  std::printf("workload: %zu requests from 2 pattern families\n\n",
              workload.size());

  EngineOptions options;
  options.enable_result_cache = true;  // serve repeat requests from memory
  QueryEngine engine(std::move(g), options);

  // Cold pass: every label/degree filter is computed for the first time.
  std::vector<AnswerSet> cold = Serve(engine, workload, "cold");
  // Warm pass: the same requests again — a server's steady state. Repeat
  // requests are served straight from the result cache (near-zero
  // latency); answers must be identical.
  std::vector<AnswerSet> warm = Serve(engine, workload, "warm");
  if (cold != warm) {
    std::printf("FATAL: warm-cache answers differ from cold run\n");
    return 1;
  }

  const EngineStats stats = engine.stats();
  std::printf("\nengine totals: queries=%llu wall=%.1f ms\n",
              static_cast<unsigned long long>(stats.queries), stats.wall_ms);
  std::printf("candidate cache: %llu hits / %llu misses (hit ratio %.2f), "
              "%llu evicted under pressure\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              stats.HitRatio(),
              static_cast<unsigned long long>(stats.cache_evicted));
  std::printf("result cache   : %llu hits / %llu misses (hit ratio %.2f)\n",
              static_cast<unsigned long long>(stats.result_hits),
              static_cast<unsigned long long>(stats.result_misses),
              stats.ResultHitRatio());
  std::printf("warm == cold answers: OK\n");
  return 0;
}
