// Quickstart: build the paper's Fig. 2 G1 social graph by hand, author
// two quantified patterns (Q2 and Q3 from Fig. 1) in the text syntax,
// and evaluate them with QMatch.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/pattern_parser.h"
#include "core/qmatch.h"
#include "graph/graph_builder.h"

namespace {

const char* kNames[] = {"x1", "x2", "x3", "v0", "v1",
                        "v2", "v3", "v4", "Redmi2A"};

void PrintAnswers(const char* title, const qgp::AnswerSet& answers) {
  std::printf("%s:", title);
  for (qgp::VertexId v : answers) std::printf(" %s", kNames[v]);
  std::printf("\n");
}

}  // namespace

int main() {
  // --- Fig. 2 G1: who follows whom, who recommends the phone.
  qgp::GraphBuilder builder;
  qgp::VertexId person[8];
  for (int i = 0; i < 8; ++i) person[i] = builder.AddVertex("person");
  qgp::VertexId redmi = builder.AddVertex("redmi_2a");
  auto follow = [&](int a, int b) {
    (void)builder.AddEdge(person[a], person[b], "follow");
  };
  follow(0, 3);                            // x1 -> v0
  follow(1, 4); follow(1, 5);              // x2 -> v1, v2
  follow(2, 5); follow(2, 6); follow(2, 7);  // x3 -> v2, v3, v4
  for (int i : {3, 4, 5, 6}) {
    (void)builder.AddEdge(person[i], redmi, "recom");
  }
  (void)builder.AddEdge(person[7], redmi, "bad_rating");
  qgp::Graph g = std::move(builder).Build().value();

  // --- Q2: "everyone xo follows recommends Redmi 2A".
  auto q2 = qgp::PatternParser::Parse(R"(
      node xo person
      node z  person
      node r  redmi_2a
      edge xo z follow =100%
      edge z  r recom
      focus xo
  )", g.mutable_dict());
  if (!q2.ok()) {
    std::fprintf(stderr, "parse Q2: %s\n", q2.status().ToString().c_str());
    return 1;
  }

  // --- Q3: ">= 2 followees recommend it AND none gave it a bad rating".
  auto q3 = qgp::PatternParser::Parse(R"(
      node xo person
      node z1 person
      node z2 person
      node r  redmi_2a
      edge xo z1 follow >=2
      edge z1 r  recom
      edge xo z2 follow =0
      edge z2 r  bad_rating
      focus xo
  )", g.mutable_dict());
  if (!q3.ok()) {
    std::fprintf(stderr, "parse Q3: %s\n", q3.status().ToString().c_str());
    return 1;
  }

  auto a2 = qgp::QMatch::Evaluate(*q2, g);
  auto a3 = qgp::QMatch::Evaluate(*q3, g);
  if (!a2.ok() || !a3.ok()) {
    std::fprintf(stderr, "matching failed\n");
    return 1;
  }
  PrintAnswers("Q2 (=100% recommend)          ", a2.value());  // x1 x2
  PrintAnswers("Q3 (>=2 recom, no bad rating) ", a3.value());  // x2
  std::printf("\nThese reproduce Examples 3 and 4 of the paper.\n");
  return 0;
}
