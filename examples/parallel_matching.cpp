// Parallel quantified matching (§5): build a d-hop preserving partition
// with DPar, evaluate a generated QGP with PQMatch over n = 2..8 logical
// workers, and print the speedup curve plus partition quality.
//
//   ./examples/parallel_matching [num_users] [d]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "gen/pattern_gen.h"
#include "gen/social_gen.h"
#include "parallel/dpar.h"
#include "parallel/pqmatch.h"

int main(int argc, char** argv) {
  size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  int d = argc > 2 ? std::atoi(argv[2]) : 2;

  qgp::SocialConfig config;
  config.num_users = num_users;
  qgp::Graph g = std::move(qgp::GenerateSocialGraph(config)).value();
  std::printf("graph: %zu vertices, %zu edges; d = %d\n", g.num_vertices(),
              g.num_edges(), d);

  // One pattern with a ratio quantifier and one negated edge, grown from
  // a real instance so answers are non-trivial.
  qgp::PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.percent = 40.0;
  pc.num_negated = 1;
  std::vector<qgp::Pattern> suite;
  for (uint64_t seed = 1; suite.empty() && seed < 16; ++seed) {
    for (qgp::Pattern& q : qgp::GeneratePatternSuite(g, 4, pc, seed)) {
      if (q.Radius() <= d) {
        suite.push_back(std::move(q));
        break;
      }
    }
  }
  if (suite.empty()) {
    std::fprintf(stderr, "could not generate a pattern with radius <= d\n");
    return 1;
  }
  const qgp::Pattern& q = suite.front();
  std::printf("\npattern:\n%s\n", q.ToString(&g.dict()).c_str());

  std::printf("%4s  %10s  %10s  %8s  %8s  %9s\n", "n", "parallel_s",
              "total_work", "speedup", "skew", "|answers|");
  double t1 = 0;
  for (size_t n : {1, 2, 4, 8}) {
    qgp::DParConfig dc;
    dc.num_fragments = n;
    dc.d = d;
    auto part = qgp::DPar(g, dc);
    if (!part.ok()) {
      std::fprintf(stderr, "%s\n", part.status().ToString().c_str());
      return 1;
    }
    qgp::ParallelConfig cfg;  // simulated makespan mode
    auto res = qgp::PQMatch::Evaluate(q, *part, cfg);
    if (!res.ok()) {
      std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
      return 1;
    }
    if (n == 1) t1 = res->parallel_seconds;
    std::printf("%4zu  %10.4f  %10.4f  %8.2f  %8.2f  %9zu\n", n,
                res->parallel_seconds, res->total_work_seconds,
                t1 / std::max(res->parallel_seconds, 1e-9), part->Skew(),
                res->answers.size());
  }
  std::printf("\n(simulated makespan mode: workers run sequentially and the"
              "\n parallel time is the slowest worker plus assembly; see"
              "\n DESIGN.md)\n");
  return 0;
}
