// Knowledge discovery (the paper's Q4 / R7): on a YAGO2-like knowledge
// graph, find professors WITHOUT a PhD who advised at least p students
// who are themselves professors — a negated-edge QGP — and contrast the
// incremental (IncQMatch) and recompute-from-scratch strategies.
//
//   ./examples/knowledge_discovery [num_scientists] [p]
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/pattern_parser.h"
#include "core/qmatch.h"
#include "gen/knowledge_gen.h"

int main(int argc, char** argv) {
  size_t num_scientists =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8000;
  int p = argc > 2 ? std::atoi(argv[2]) : 2;

  qgp::KnowledgeConfig config;
  config.num_scientists = num_scientists;
  auto graph = qgp::GenerateKnowledgeGraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  qgp::Graph g = std::move(graph).value();
  std::printf("knowledge graph: %zu vertices, %zu edges\n",
              g.num_vertices(), g.num_edges());

  std::string text =
      "node xo  scientist\n"
      "node t   prof_title\n"
      "node z   scientist\n"
      "node phd phd_degree\n"
      "edge xo t   is_a\n"
      "edge xo z   advisor >=" + std::to_string(p) + "\n"
      "edge z  t   is_a\n"
      "edge xo phd has_degree =0\n"
      "focus xo\n";
  auto q4 = qgp::PatternParser::Parse(text, g.mutable_dict());
  if (!q4.ok()) {
    std::fprintf(stderr, "%s\n", q4.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery (Q4 of the paper, p = %d):\n%s\n", p,
              q4->ToString(&g.dict()).c_str());

  qgp::WallTimer timer;
  qgp::MatchStats inc_stats;
  auto answers = qgp::QMatch::Evaluate(*q4, g, {}, &inc_stats);
  double inc_time = timer.ElapsedSeconds();
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }

  timer.Restart();
  qgp::MatchStats naive_stats;
  qgp::MatchOptions no_inc;
  no_inc.use_incremental_negation = false;
  auto answers2 = qgp::QMatch::Evaluate(*q4, g, no_inc, &naive_stats);
  double naive_time = timer.ElapsedSeconds();

  std::printf("professors without a PhD advising >= %d professor students:"
              " %zu found\n", p, answers.value().size());
  std::printf("  QMatch  (IncQMatch):  %.3fs, %llu focus checks\n", inc_time,
              static_cast<unsigned long long>(
                  inc_stats.focus_candidates_checked));
  std::printf("  QMatchn (recompute):  %.3fs, %llu focus checks\n",
              naive_time,
              static_cast<unsigned long long>(
                  naive_stats.focus_candidates_checked));
  if (answers2.ok() && answers2.value() == answers.value()) {
    std::printf("  both strategies agree on the answer set.\n");
  }
  return 0;
}
