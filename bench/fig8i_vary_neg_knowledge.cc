// Figure 8(i): varying |E−Q| from 0 to 4 on the YAGO2 substitute.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(i): varying |E-Q| (YAGO2)",
              "|E-Q| in 0..4; n=8, (6,8), pa=30%",
              "PQMatch near-flat in |E-Q|; baselines grow");
  qgp::Graph g = MakeYagoLike(8000);
  PrintGraphLine("yago2-like", g);
  qgp::DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  auto part = qgp::DPar(g, dc);
  if (!part.ok()) return 1;
  BenchReporter reporter("fig8i_vary_neg_knowledge");
  std::printf("\n");
  PrintAlgoHeader("|E-Q|");
  for (size_t neg : {0, 1, 2, 3, 4}) {
    std::vector<qgp::Pattern> suite = MakeSuite(g, 2, PatternConfig(6, 8, 30.0, neg), 701 + neg, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
    if (suite.empty()) {
      std::printf("%8zu  pattern generation failed\n", neg);
      continue;
    }
    RunAndPrintRow("neg=" + std::to_string(neg), suite, *part, &reporter);
  }
  return 0;
}
