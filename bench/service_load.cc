// Network query service load bench: the TCP substrate measured apart
// from evaluation. A QueryService is booted on a loopback port over an
// engine with the result cache on; after a cold priming pass (answers
// verified against a direct engine run), every measured request is a
// result-cache hit, so the rows isolate what the service itself costs —
// codec, socket hops, admission and dispatch:
//
//   * closed-loop serial client (request/response, 1 connection),
//   * the same volume pipelined (all writes before the first read),
//   * 4 concurrent closed-loop clients,
//   * an open-loop generator (fixed-rate schedule, 2 connections)
//     reporting achieved QPS and p50/p95/p99 latency.
//
// The closed-loop rows are the regression-gate surface; the open-loop
// row's wall clock is schedule-dominated by construction, its value is
// the latency percentiles carried as extra metrics.
// Emits BENCH_service_load.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/bench_common.h"
#include "core/pattern_parser.h"
#include "engine/query_engine.h"
#include "service/client.h"
#include "service/query_service.h"

using namespace qgp;
using namespace qgp::bench;
using service::QueryService;
using service::ServiceClient;
using service::ServiceOptions;
using service::ServiceRequest;
using service::ServiceResponse;

namespace {

void Die(const char* what) {
  std::printf("FATAL: %s\n", what);
  std::exit(1);
}

// Two §7-style families interleaved, carried both as wire requests (the
// serialized DSL the protocol ships) and as direct QuerySpecs for the
// reference run the service answers are verified against.
struct Workload {
  std::vector<ServiceRequest> requests;
  std::vector<QuerySpec> specs;
};

Workload MakeServiceWorkload(const Graph& g) {
  std::vector<Pattern> family_a =
      MakeSuite(g, 5, PatternConfig(4, 5, 30.0, 0), /*seed=*/101);
  std::vector<Pattern> family_b =
      MakeSuite(g, 5, PatternConfig(5, 6, 50.0, 1), /*seed=*/202);
  Workload w;
  auto add = [&](const Pattern& q, const char* family, size_t i) {
    ServiceRequest r;
    r.pattern_text = PatternParser::Serialize(q, g.dict());
    r.tag = std::string(family) + "/" + std::to_string(i);
    w.requests.push_back(std::move(r));
    QuerySpec spec;
    spec.pattern = q;
    w.specs.push_back(std::move(spec));
  };
  for (size_t i = 0; i < family_a.size() || i < family_b.size(); ++i) {
    if (i < family_a.size()) add(family_a[i], "A", i);
    if (i < family_b.size()) add(family_b[i], "B", i);
  }
  return w;
}

// One closed-loop pass over the workload: serial request/response on an
// established connection. Answers must be ok; returns the count served.
size_t ServeOnce(ServiceClient& client,
                 const std::vector<ServiceRequest>& requests) {
  for (const ServiceRequest& request : requests) {
    auto response = client.Call(request);
    if (!response.ok() || !response->ok) Die("closed-loop request failed");
  }
  return requests.size();
}

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[idx];
}

}  // namespace

int main() {
  PrintHeader("service_load — TCP query service substrate",
              "loopback QueryService, result-cache-served repeat traffic",
              "codec + socket + admission cost, apart from evaluation");
  Graph g = MakePokecLike(800);
  PrintGraphLine("graph", g);
  BenchReporter reporter("service_load");

  Workload workload = MakeServiceWorkload(g);
  const size_t n = workload.requests.size();
  if (n == 0) Die("pattern generation produced an empty workload");
  // Closed-loop volume: enough repeat traffic per configuration that the
  // per-request cost dominates connection setup.
  const size_t reps = std::max<size_t>(2, static_cast<size_t>(20 * ScaleFactor()));
  std::printf("workload: %zu requests x %zu reps\n\n", n, reps);

  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.enable_result_cache = true;
  QueryEngine engine(&g, engine_options);

  // Reference answers from a direct engine run — the service may never
  // answer differently than the engine it fronts.
  QueryEngine reference(&g, engine_options);
  auto expected = reference.RunBatch(workload.specs);
  if (!expected.ok()) Die("reference batch failed");

  // Admission limits off: this bench measures the substrate, not the
  // shedding policy (tests/service covers that); the pipelined and
  // open-loop sections would otherwise trip the per-client limit.
  ServiceOptions service_options;
  service_options.max_inflight = 0;
  service_options.max_inflight_per_client = 0;
  QueryService server(&engine, service_options);
  if (!server.Start().ok()) Die("service failed to start");

  auto client = ServiceClient::Connect(server.port());
  if (!client.ok()) Die("loopback connect failed");

  // --- Cold priming pass: evaluation through the service, verified.
  double prime_s = TimeSeconds([&] {
    for (size_t i = 0; i < n; ++i) {
      auto response = client->Call(workload.requests[i]);
      if (!response.ok() || !response->ok) Die("prime request failed");
      if (response->answers != (*expected)[i].answers) {
        Die("service answers differ from the direct engine run");
      }
    }
  });
  reporter.Add("service/prime/cold", prime_s * 1000.0,
               {{"requests", static_cast<double>(n)}});
  std::printf("prime (cold, verified): %8.2f ms\n", prime_s * 1000.0);

  // --- Closed-loop serial client, warm: every request a result-cache
  // hit, so the row is the request/response substrate cost.
  size_t serial_served = 0;
  double serial_s = TimeSeconds([&] {
    for (size_t r = 0; r < reps; ++r) {
      serial_served += ServeOnce(*client, workload.requests);
    }
  });
  reporter.Add("service/closed_loop/serial", serial_s * 1000.0,
               {{"requests", static_cast<double>(serial_served)},
                {"qps", serial_s > 0 ? serial_served / serial_s : 0.0}});
  std::printf("closed-loop serial    : %8.2f ms  (%.0f req/s)\n",
              serial_s * 1000.0, serial_s > 0 ? serial_served / serial_s : 0.0);

  // --- Same volume pipelined: all writes issued before the first read;
  // the per-connection reorder buffer must hand responses back in
  // request order (tags asserted).
  double pipelined_s = TimeSeconds([&] {
    for (size_t r = 0; r < reps; ++r) {
      for (const ServiceRequest& request : workload.requests) {
        if (!client->Send(request).ok()) Die("pipelined send failed");
      }
      for (const ServiceRequest& request : workload.requests) {
        auto response = client->ReadResponse();
        if (!response.ok() || !response->ok) Die("pipelined read failed");
        if (response->tag != request.tag) Die("pipelined response out of order");
      }
    }
  });
  const size_t pipelined_served = n * reps;
  reporter.Add(
      "service/closed_loop/pipelined", pipelined_s * 1000.0,
      {{"requests", static_cast<double>(pipelined_served)},
       {"qps", pipelined_s > 0 ? pipelined_served / pipelined_s : 0.0}});
  std::printf("pipelined burst       : %8.2f ms  (%.0f req/s)\n",
              pipelined_s * 1000.0,
              pipelined_s > 0 ? pipelined_served / pipelined_s : 0.0);

  // --- Deadline mix: the same closed-loop volume with timeout_ms on
  // every other request (a generous budget that never fires — the
  // service still arms a per-request CancelToken chained to the drain
  // token and threads it through the engine). The row tracks what the
  // deadline plumbing costs on the request path; none may expire, so
  // the zero-failure audit below keeps gating this bench.
  {
    std::vector<ServiceRequest> mixed = workload.requests;
    for (size_t i = 0; i < mixed.size(); i += 2) {
      mixed[i].timeout_ms = 30'000;
    }
    size_t mixed_served = 0;
    double mixed_s = TimeSeconds([&] {
      for (size_t r = 0; r < reps; ++r) {
        mixed_served += ServeOnce(*client, mixed);
      }
    });
    reporter.Add("service/deadline_mix/serial", mixed_s * 1000.0,
                 {{"requests", static_cast<double>(mixed_served)},
                  {"with_deadline", static_cast<double>((n + 1) / 2)},
                  {"qps", mixed_s > 0 ? mixed_served / mixed_s : 0.0}});
    std::printf("deadline mix serial   : %8.2f ms  (%.0f req/s)\n",
                mixed_s * 1000.0, mixed_s > 0 ? mixed_served / mixed_s : 0.0);
  }

  // --- 4 concurrent closed-loop clients, each on its own connection.
  constexpr size_t kClients = 4;
  std::atomic<size_t> concurrent_served{0};
  double concurrent_s = TimeSeconds([&] {
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&] {
        auto conn = ServiceClient::Connect(server.port());
        if (!conn.ok()) Die("concurrent connect failed");
        for (size_t r = 0; r < reps; ++r) {
          concurrent_served += ServeOnce(*conn, workload.requests);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  });
  reporter.Add(
      "service/closed_loop/clients=4", concurrent_s * 1000.0,
      {{"requests", static_cast<double>(concurrent_served.load())},
       {"qps",
        concurrent_s > 0 ? concurrent_served.load() / concurrent_s : 0.0}});
  std::printf("closed-loop 4 clients : %8.2f ms  (%.0f req/s)\n",
              concurrent_s * 1000.0,
              concurrent_s > 0 ? concurrent_served.load() / concurrent_s : 0.0);

  // --- Open-loop generator: a fixed-rate send schedule per connection
  // (sends never wait for responses), a reader thread per connection
  // pairing the i-th response with the i-th send time. Offered rate is
  // deliberately below the closed-loop capacity measured above, so the
  // percentiles reflect substrate + queueing, not saturation collapse.
  {
    constexpr size_t kConnections = 2;
    const auto interval = std::chrono::microseconds(1000);  // 1k qps/conn
    const size_t per_conn =
        std::max<size_t>(30, static_cast<size_t>(300 * ScaleFactor()));
    const double offered_qps =
        kConnections * 1e6 / std::chrono::duration<double, std::micro>(interval).count();

    std::vector<double> latencies_ms;
    std::mutex latencies_mu;
    using Clock = std::chrono::steady_clock;
    double open_s = TimeSeconds([&] {
      std::vector<std::thread> threads;
      for (size_t c = 0; c < kConnections; ++c) {
        threads.emplace_back([&] {
          auto conn = ServiceClient::Connect(server.port());
          if (!conn.ok()) Die("open-loop connect failed");
          std::vector<Clock::time_point> sent(per_conn);
          std::thread sender([&] {
            const auto start = Clock::now();
            for (size_t i = 0; i < per_conn; ++i) {
              std::this_thread::sleep_until(start + i * interval);
              sent[i] = Clock::now();
              if (!conn->Send(workload.requests[i % n]).ok()) {
                Die("open-loop send failed");
              }
            }
          });
          std::vector<double> mine;
          mine.reserve(per_conn);
          for (size_t i = 0; i < per_conn; ++i) {
            auto response = conn->ReadResponse();
            if (!response.ok() || !response->ok) Die("open-loop read failed");
            // Responses come back in request order on a connection, so
            // the pairing is positional. sent[i] is written before the
            // request goes out, hence before its response can arrive.
            mine.push_back(std::chrono::duration<double, std::milli>(
                               Clock::now() - sent[i])
                               .count());
          }
          sender.join();
          std::lock_guard<std::mutex> lock(latencies_mu);
          latencies_ms.insert(latencies_ms.end(), mine.begin(), mine.end());
        });
      }
      for (std::thread& t : threads) t.join();
    });

    std::sort(latencies_ms.begin(), latencies_ms.end());
    const size_t total = kConnections * per_conn;
    const double achieved = open_s > 0 ? total / open_s : 0.0;
    const double p50 = Percentile(latencies_ms, 0.50);
    const double p95 = Percentile(latencies_ms, 0.95);
    const double p99 = Percentile(latencies_ms, 0.99);
    reporter.Add("service/open_loop/offered=2000", open_s * 1000.0,
                 {{"requests", static_cast<double>(total)},
                  {"offered_qps", offered_qps},
                  {"achieved_qps", achieved},
                  {"p50_ms", p50},
                  {"p95_ms", p95},
                  {"p99_ms", p99}});
    std::printf(
        "open loop @%.0f req/s  : %8.2f ms  (achieved %.0f req/s, "
        "p50/p95/p99 = %.3f/%.3f/%.3f ms)\n",
        offered_qps, open_s * 1000.0, achieved, p50, p95, p99);
  }

  server.Stop();
  const service::ServiceStats stats = server.stats();
  if (stats.queries_failed != 0 || stats.rejected != 0 || stats.malformed != 0) {
    Die("service reported failed/rejected/malformed requests");
  }
  if (!reporter.Write()) Die("failed to write BENCH_service_load.json");
  std::printf("\nall service answers verified against the engine: OK\n");
  return 0;
}
