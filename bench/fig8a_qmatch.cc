// Figure 8(a): sequential response time of QMatch vs QMatchn vs Enum on
// the YAGO2 substitute, two Pokec-substitute workloads (|Q| = (5,7,30%,1)
// and (6,8,30%,1)) and a larger synthetic graph.
#include "bench/common/bench_common.h"
#include "core/enum_matcher.h"
#include "core/qmatch.h"

namespace qgp::bench {
namespace {

struct SeqRun {
  double seconds = 0;
  size_t answers = 0;
  bool capped = false;
};

SeqRun RunSeq(const char* algo, const Graph& g,
              const std::vector<Pattern>& suite) {
  SeqRun run;
  for (const Pattern& q : suite) {
    MatchOptions opts;
    Result<AnswerSet> r = Status::Ok();
    double t = TimeSeconds([&] {
      if (std::string(algo) == "Enum") {
        opts.max_isomorphisms = 3'000'000;
        r = EnumMatcher::Evaluate(q, g, opts);
      } else if (std::string(algo) == "QMatchn") {
        opts.use_incremental_negation = false;
        r = QMatch::Evaluate(q, g, opts);
      } else {
        r = QMatch::Evaluate(q, g, opts);
      }
    });
    run.seconds += t;
    if (r.ok()) {
      run.answers += r->size();
    } else {
      run.capped = true;
    }
  }
  return run;
}

void Dataset(const char* name, const Graph& g, size_t vq, size_t eq,
             BenchReporter& reporter) {
  PrintGraphLine(name, g);
  std::vector<Pattern> suite =
      MakeSuite(g, 3, PatternConfig(vq, eq, 30.0, 1), 101,
                /*max_radius=*/0, /*enum_probe_cap=*/400000);
  if (suite.empty()) {
    std::printf("  (pattern generation failed)\n");
    return;
  }
  SeqRun en = RunSeq("Enum", g, suite);
  SeqRun qn = RunSeq("QMatchn", g, suite);
  SeqRun qm = RunSeq("QMatch", g, suite);
  const std::string point =
      std::string(name) + "(" + std::to_string(vq) + "," + std::to_string(eq) +
      ")";
  reporter.Add(point + "/Enum", en.seconds * 1e3,
               {{"answers", static_cast<double>(en.answers)},
                {"capped", en.capped ? 1.0 : 0.0}});
  reporter.Add(point + "/QMatchn", qn.seconds * 1e3,
               {{"answers", static_cast<double>(qn.answers)}});
  reporter.Add(point + "/QMatch", qm.seconds * 1e3,
               {{"answers", static_cast<double>(qm.answers)},
                {"speedup_vs_enum",
                 qm.seconds > 0 ? en.seconds / qm.seconds : 0.0}});
  std::printf("  %-22s  Enum %9.3fs%s | QMatchn %9.3fs | QMatch %9.3fs"
              "  (speedup vs Enum %.2fx, vs QMatchn %.2fx; answers %zu)\n",
              (std::string(name) + " (" + std::to_string(vq) + "," +
               std::to_string(eq) + ")")
                  .c_str(),
              en.seconds, en.capped ? "*" : " ", qn.seconds, qm.seconds,
              qm.seconds > 0 ? en.seconds / qm.seconds : 0.0,
              qm.seconds > 0 ? qn.seconds / qm.seconds : 0.0, qm.answers);
}

}  // namespace
}  // namespace qgp::bench

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(a): QMatch response time vs QMatchn and Enum",
              "|Q|=(5,7,30%,1) and (6,8,30%,1), sequential",
              "QMatch ~1.2-1.3x faster than QMatchn, ~2-2.6x faster than "
              "Enum");
  BenchReporter reporter("fig8a_qmatch");
  qgp::Graph yago = MakeYagoLike(8000);
  Dataset("yago2-like", yago, 5, 7, reporter);
  qgp::Graph pokec = MakePokecLike(5000);
  Dataset("pokec-like (pokec5)", pokec, 5, 7, reporter);
  Dataset("pokec-like (pokec6)", pokec, 6, 8, reporter);
  qgp::Graph synthetic = MakeSynthetic(
      static_cast<size_t>(20000 * ScaleFactor()),
      static_cast<size_t>(40000 * ScaleFactor()));
  Dataset("synthetic", synthetic, 5, 7, reporter);
  std::printf("(* = Enum hit the per-focus isomorphism cap)\n");
  return 0;
}
