#ifndef QGP_BENCH_COMMON_BENCH_COMMON_H_
#define QGP_BENCH_COMMON_BENCH_COMMON_H_

// Shared scaffolding for the figure-reproduction benches: scaled dataset
// construction (Pokec / YAGO2 substitutes, DESIGN.md §3), §7-style
// pattern workloads, timing helpers and paper-style table printing.
//
// Every bench binary runs with no arguments; QGP_BENCH_SCALE =
// tiny|small|medium|large scales the workloads.

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "core/pattern_analysis.h"
#include "gen/knowledge_gen.h"
#include "gen/pattern_gen.h"
#include "gen/social_gen.h"
#include "gen/synthetic_gen.h"
#include "graph/graph.h"

namespace qgp {
struct Partition;  // parallel/partition.h — only the DPar benches need it
}

namespace qgp::bench {

/// Workload multiplier from QGP_BENCH_SCALE.
inline double ScaleFactor() { return BenchScaleFactor(GetBenchScale()); }

/// Machine-readable benchmark record. Each bench binary owns one
/// BenchReporter and Add()s a row per (config point, measurement); on
/// destruction (or explicit Write()) the reporter emits
/// `$QGP_BENCH_OUT/BENCH_<name>.json` carrying wall-ms per config point,
/// optional MatchStats counters, the QGP_BENCH_SCALE setting and the git
/// revision (from $QGP_GIT_REV, injected by tools/run_bench.sh). The
/// paper-style stdout tables stay; this is the tracked trajectory.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}
  ~BenchReporter() {
    if (!written_) Write();
  }
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Records one measurement. `config` identifies the point (e.g.
  /// "pokec5/QMatch"), `wall_ms` its wall-clock cost; `extra` carries
  /// further numeric metrics (answers, speedups, |V|); `stats`, when
  /// given, is serialized counter by counter.
  void Add(const std::string& config, double wall_ms,
           std::vector<std::pair<std::string, double>> extra = {},
           const MatchStats* stats = nullptr);

  /// Writes BENCH_<name>.json; returns false on I/O failure. Idempotent.
  bool Write();

  /// Resolved output directory: $QGP_BENCH_OUT, or "." when unset.
  static std::string OutputDir();

 private:
  struct Row {
    std::string config;
    double wall_ms = 0;
    std::vector<std::pair<std::string, double>> extra;
    std::optional<MatchStats> stats;
  };

  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
};

/// Pokec substitute at `users_base * ScaleFactor()` users.
inline Graph MakePokecLike(size_t users_base) {
  SocialConfig c;
  c.num_users = static_cast<size_t>(users_base * ScaleFactor());
  if (c.num_users < 200) c.num_users = 200;
  c.num_products = std::max<size_t>(20, c.num_users / 100);
  c.num_albums = std::max<size_t>(10, c.num_users / 200);
  c.community_size = 250;
  c.seed = 7;
  return std::move(GenerateSocialGraph(c)).value();
}

/// YAGO2 substitute at `scientists_base * ScaleFactor()` scientists.
inline Graph MakeYagoLike(size_t scientists_base) {
  KnowledgeConfig c;
  c.num_scientists = static_cast<size_t>(scientists_base * ScaleFactor());
  if (c.num_scientists < 200) c.num_scientists = 200;
  c.num_universities = std::max<size_t>(20, c.num_scientists / 100);
  c.seed = 11;
  return std::move(GenerateKnowledgeGraph(c)).value();
}

/// GTgraph-style synthetic graph (small-world), |V| and |E| as given.
inline Graph MakeSynthetic(size_t vertices, size_t edges) {
  SyntheticConfig c;
  c.num_vertices = vertices;
  c.num_edges = edges;
  c.num_node_labels = 30;
  c.num_edge_labels = 10;
  c.seed = 13;
  return std::move(GenerateSynthetic(c)).value();
}

/// §7 pattern-size notation (|VQ|, |EQ|, pa%, |E−Q|) → generator config.
inline PatternGenConfig PatternConfig(size_t nodes, size_t edges, double pa,
                                      size_t negated,
                                      size_t quantified = 2) {
  PatternGenConfig c;
  c.num_nodes = nodes;
  c.num_edges = edges;
  c.num_quantified = quantified;
  c.kind = QuantKind::kRatio;
  c.op = QuantOp::kGe;
  c.percent = pa;
  c.num_negated = negated;
  return c;
}

/// Generates up to `count` patterns whose radius fits `max_radius`
/// (<= 0 means unconstrained). When `enum_probe_cap` > 0, patterns are
/// additionally screened so the Enum baseline can finish them within
/// that per-focus embedding budget — the paper's Enum ([35]) completes
/// all its workloads, so the four-way comparisons only make sense on
/// such patterns (EXPERIMENTS.md discusses the screening).
std::vector<Pattern> MakeSuite(const Graph& g, size_t count,
                               const PatternGenConfig& config, uint64_t seed,
                               int max_radius = 0,
                               uint64_t enum_probe_cap = 0);

/// Rewrites every ratio quantifier of `base` to `percent` (used by the
/// pa sweeps: same topology, different aggregate).
inline Pattern WithRatioPercent(const Pattern& base, double percent) {
  Pattern q;
  for (PatternNodeId u = 0; u < base.num_nodes(); ++u) {
    q.AddNode(base.node(u).label, base.node(u).name);
  }
  for (PatternEdgeId e = 0; e < base.num_edges(); ++e) {
    const PatternEdge& pe = base.edge(e);
    Quantifier quant = pe.quantifier;
    if (!quant.IsExistential() && quant.kind() == QuantKind::kRatio) {
      quant = Quantifier::Ratio(quant.op(), percent);
    }
    (void)q.AddEdge(pe.src, pe.dst, pe.label, quant);
  }
  (void)q.set_focus(base.focus());
  return q;
}

/// Times one call.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.ElapsedSeconds();
}

/// Strict partition identity: the "parallel DPar == serial DPar"
/// contract, in one place for every bench that asserts it. Compares the
/// base regions, border count, and every fragment's ownership, vertex
/// mapping and edge count. (Defined in bench_common.cc so the DPar and
/// ThreadPool headers stay out of the other bench TUs.)
bool PartitionsIdentical(const Partition& a, const Partition& b);

/// Shared by the fig8d/8e DPar benches: one real-threads partitioning
/// point (n=8, d=2) — serial wall time vs the work-stealing pool at
/// this host's core count, identity-checked (the speedup can never come
/// from partitioning differently). Emits an "n=8/d=2/pool_wall" row.
/// Returns false on failure.
bool ReportPoolVsSerialDPar(const Graph& g, BenchReporter& reporter);

/// Header block: what figure this reproduces and what the paper reports.
inline void PrintHeader(const std::string& figure,
                        const std::string& setting,
                        const std::string& paper_trend) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("  setting : %s\n", setting.c_str());
  std::printf("  paper   : %s\n", paper_trend.c_str());
  std::printf("  scale   : %s (QGP_BENCH_SCALE)\n",
              BenchScaleName(GetBenchScale()));
  std::printf("==============================================================\n");
}

inline void PrintGraphLine(const char* name, const Graph& g) {
  std::printf("%s: |V|=%zu |E|=%zu\n", name, g.num_vertices(),
              g.num_edges());
}

}  // namespace qgp::bench

#endif  // QGP_BENCH_COMMON_BENCH_COMMON_H_
