#ifndef QGP_BENCH_COMMON_PARALLEL_RUNNER_H_
#define QGP_BENCH_COMMON_PARALLEL_RUNNER_H_

// Runner for the four parallel algorithm variants §7 compares:
//   PEnum    — parallel enumerate-then-verify baseline
//   PQMatchs — PQMatch, single thread per worker
//   PQMatchn — PQMatch without incremental negation, b threads
//   PQMatch  — the full algorithm, b threads + IncQMatch
// Parallel time is the simulated makespan (DESIGN.md §3).

#include <string>
#include <vector>

#include "bench/common/bench_common.h"
#include "parallel/penum.h"
#include "parallel/pqmatch.h"

namespace qgp::bench {

struct ParallelAlgo {
  const char* name;
  bool enum_based;
  bool incremental;
  size_t threads_per_worker;
};

/// The paper runs b = 4 threads per 4-vCPU worker; this host has 2
/// cores, so the faithful adaptation is b = 2 for the threaded variants.
inline std::vector<ParallelAlgo> StandardParallelAlgos() {
  return {{"PEnum", true, false, 1},
          {"PQMatchs", false, true, 1},
          {"PQMatchn", false, false, 2},
          {"PQMatch", false, true, 2}};
}

struct ParallelRun {
  double seconds = 0;       // summed simulated parallel time over suite
  size_t answers = 0;       // summed answer counts
  std::string note;         // non-empty on error/cap
  bool ok = true;
};

inline ParallelRun RunParallelSuite(const ParallelAlgo& algo,
                                    const std::vector<Pattern>& suite,
                                    const Partition& partition,
                                    uint64_t enum_cap = 3'000'000) {
  ParallelRun run;
  ParallelConfig cfg;
  cfg.mode = ExecutionMode::kSimulated;
  cfg.threads_per_worker = algo.threads_per_worker;
  cfg.match.use_incremental_negation = algo.incremental;
  cfg.match.max_isomorphisms = algo.enum_based ? enum_cap : 0;
  for (const Pattern& q : suite) {
    Result<ParallelRunResult> r =
        algo.enum_based ? PEnum::Evaluate(q, partition, cfg)
                        : PQMatch::Evaluate(q, partition, cfg);
    if (!r.ok()) {
      run.ok = false;
      run.note = r.status().ToString();
      continue;
    }
    run.seconds += r->parallel_seconds;
    run.answers += r->answers.size();
  }
  return run;
}

/// Prints one table row: n (or another x value) followed by per-algorithm
/// times.
inline void PrintAlgoHeader(const char* xlabel) {
  std::printf("%8s  %12s  %12s  %12s  %12s  %9s\n", xlabel, "PEnum",
              "PQMatchs", "PQMatchn", "PQMatch", "|answers|");
}

/// One row of the standard four-algorithm table; "DNF" marks a variant
/// that could not finish (e.g. Enum hit its isomorphism cap).
inline void PrintAlgoRow(const std::string& label, const ParallelRun runs[4],
                         size_t answers) {
  std::printf("%8s", label.c_str());
  for (size_t a = 0; a < 4; ++a) {
    if (!runs[a].ok && runs[a].seconds <= 0) {
      std::printf("  %12s", "DNF");
    } else {
      std::printf("  %12.3f", runs[a].seconds);
    }
  }
  std::printf("  %9zu\n", answers);
}

/// Runs the standard four algorithms over a suite and prints the row;
/// when `reporter` is given, also records one JSON row per algorithm
/// ("<label>/<algo>"). Returns the full-PQMatch time (last column) for
/// speedup summaries.
inline double RunAndPrintRow(const std::string& label,
                             const std::vector<Pattern>& suite,
                             const Partition& partition,
                             BenchReporter* reporter = nullptr) {
  ParallelRun runs[4];
  size_t answers = 0;
  auto algos = StandardParallelAlgos();
  for (size_t a = 0; a < algos.size(); ++a) {
    runs[a] = RunParallelSuite(algos[a], suite, partition);
    if (runs[a].answers > answers) answers = runs[a].answers;
    if (reporter != nullptr) {
      reporter->Add(label + "/" + algos[a].name, runs[a].seconds * 1e3,
                    {{"answers", static_cast<double>(runs[a].answers)},
                     {"ok", runs[a].ok ? 1.0 : 0.0}});
    }
  }
  PrintAlgoRow(label, runs, answers);
  return runs[3].seconds;
}

}  // namespace qgp::bench

#endif  // QGP_BENCH_COMMON_PARALLEL_RUNNER_H_
