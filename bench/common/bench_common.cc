#include "bench/common/bench_common.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <thread>
#include <utility>

#include "common/thread_pool.h"
#include "core/enum_matcher.h"
#include "parallel/dpar.h"

namespace qgp::bench {

namespace {

// Minimal JSON string escaping: quotes, backslashes, control chars.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Revision stamped into every BENCH json: $QGP_GIT_REV when the harness
// (tools/run_bench.sh) injected it, else `git rev-parse` at run time —
// bench binaries run by hand from a repo checkout used to emit
// "git_rev": "unknown" (BENCH_exp3_qgar.json was the repeat offender),
// which made trajectories unattributable. The lookup is anchored to the
// BINARY's directory (build/bench/ inside the checkout), not the cwd —
// running a bench from some unrelated git repo must not stamp that
// repo's HEAD onto this repo's numbers.
std::string ResolveGitRev() {
  std::string rev = GetEnvString("QGP_GIT_REV", "");
  if (!rev.empty()) return rev;
  // popen goes through /bin/sh, so the directory is interpolated only
  // when it is provably inert under shell parsing. A binary whose path
  // cannot be safely interpolated gets "unknown" — never the cwd lookup,
  // which could stamp an unrelated checkout's HEAD.
  auto shell_safe = [](const std::string& s) {
    for (char c : s) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '/' || c == '.' ||
                      c == '_' || c == '-' || c == '+';
      if (!ok) return false;
    }
    return !s.empty();
  };
  std::string dir;
  char exe[4096];
  const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (len > 0) {
    exe[len] = '\0';
    dir = exe;
    const size_t slash = dir.rfind('/');
    dir = slash != std::string::npos ? dir.substr(0, slash) : std::string();
  }
  if (!shell_safe(dir)) return "unknown";
  const std::string cmd =
      "git -C " + dir + " rev-parse --short HEAD 2>/dev/null";
  if (std::FILE* p = ::popen(cmd.c_str(), "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      rev = buf;
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
    }
    ::pclose(p);
  }
  return rev.empty() ? "unknown" : rev;
}

// JSON has no NaN/Inf; clamp to null-free 0 and format with enough
// precision for millisecond timings.
void PrintJsonNumber(std::FILE* f, double v) {
  if (v != v || v > 1e300 || v < -1e300) v = 0;
  std::fprintf(f, "%.6g", v);
}

void PrintStats(std::FILE* f, const MatchStats& s) {
  std::fprintf(
      f,
      "{\"isomorphisms_enumerated\":%" PRIu64 ",\"witness_searches\":%" PRIu64
      ",\"search_extensions\":%" PRIu64 ",\"candidates_initial\":%" PRIu64
      ",\"candidates_pruned\":%" PRIu64 ",\"focus_candidates_checked\":%" PRIu64
      ",\"inc_candidates_checked\":%" PRIu64 ",\"balls_built\":%" PRIu64
      ",\"scheduler_tasks\":%" PRIu64 ",\"scheduler_steals\":%" PRIu64 "}",
      s.isomorphisms_enumerated, s.witness_searches, s.search_extensions,
      s.candidates_initial, s.candidates_pruned, s.focus_candidates_checked,
      s.inc_candidates_checked, s.balls_built, s.scheduler_tasks,
      s.scheduler_steals);
}

}  // namespace

void BenchReporter::Add(const std::string& config, double wall_ms,
                        std::vector<std::pair<std::string, double>> extra,
                        const MatchStats* stats) {
  Row row;
  row.config = config;
  row.wall_ms = wall_ms;
  row.extra = std::move(extra);
  if (stats != nullptr) row.stats = *stats;
  rows_.push_back(std::move(row));
}

std::string BenchReporter::OutputDir() {
  return GetEnvString("QGP_BENCH_OUT", ".");
}

bool BenchReporter::Write() {
  if (written_) return true;
  written_ = true;
  const std::string path = OutputDir() + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReporter: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"bench\": \"%s\",\n",
               JsonEscape(name_).c_str());
  std::fprintf(f, "  \"scale\": \"%s\",\n", BenchScaleName(GetBenchScale()));
  std::fprintf(f, "  \"scale_factor\": ");
  PrintJsonNumber(f, ScaleFactor());
  std::fprintf(f, ",\n  \"git_rev\": \"%s\",\n",
               JsonEscape(ResolveGitRev()).c_str());
  std::fprintf(f, "  \"rows\": [");
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    std::fprintf(f, "%s\n    {\"config\": \"%s\", \"wall_ms\": ",
                 i == 0 ? "" : ",", JsonEscape(r.config).c_str());
    PrintJsonNumber(f, r.wall_ms);
    if (!r.extra.empty()) {
      std::fprintf(f, ", \"metrics\": {");
      for (size_t k = 0; k < r.extra.size(); ++k) {
        std::fprintf(f, "%s\"%s\": ", k == 0 ? "" : ", ",
                     JsonEscape(r.extra[k].first).c_str());
        PrintJsonNumber(f, r.extra[k].second);
      }
      std::fprintf(f, "}");
    }
    if (r.stats.has_value()) {
      std::fprintf(f, ", \"stats\": ");
      PrintStats(f, *r.stats);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  const bool ok = std::fclose(f) == 0;
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

bool PartitionsIdentical(const Partition& a, const Partition& b) {
  if (a.d != b.d || a.num_border_nodes != b.num_border_nodes ||
      a.base_region != b.base_region ||
      a.fragments.size() != b.fragments.size()) {
    return false;
  }
  for (size_t i = 0; i < a.fragments.size(); ++i) {
    if (a.fragments[i].owned_global != b.fragments[i].owned_global ||
        a.fragments[i].owned_local != b.fragments[i].owned_local ||
        a.fragments[i].sub.local_to_global !=
            b.fragments[i].sub.local_to_global ||
        a.fragments[i].sub.graph.num_edges() !=
            b.fragments[i].sub.graph.num_edges()) {
      return false;
    }
  }
  return true;
}

bool ReportPoolVsSerialDPar(const Graph& g, BenchReporter& reporter) {
  DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  WallTimer serial_timer;
  auto serial = DPar(g, dc);
  const double serial_ms = serial_timer.ElapsedMillis();
  if (!serial.ok()) return false;
  const size_t hw = std::max(2u, std::thread::hardware_concurrency());
  ThreadPool pool(hw);
  WallTimer pool_timer;
  auto pooled = DPar(g, dc, nullptr, &pool);
  const double pool_ms = pool_timer.ElapsedMillis();
  if (!pooled.ok()) return false;
  if (!PartitionsIdentical(*serial, *pooled)) {
    std::printf("FATAL: pooled DPar diverged from serial\n");
    return false;
  }
  std::printf("pool-parallel DPar (n=8, d=2, %zu threads): "
              "%.1f ms vs serial %.1f ms (%.2fx)\n",
              hw, pool_ms, serial_ms,
              pool_ms > 0 ? serial_ms / pool_ms : 0.0);
  reporter.Add("n=8/d=2/pool_wall", pool_ms,
               {{"threads", static_cast<double>(hw)},
                {"serial_wall_ms", serial_ms}});
  return true;
}

std::vector<Pattern> MakeSuite(const Graph& g, size_t count,
                               const PatternGenConfig& config, uint64_t seed,
                               int max_radius, uint64_t enum_probe_cap) {
  if (enum_probe_cap == 0) {
    std::vector<Pattern> suite;
    for (uint64_t s = seed; suite.size() < count && s < seed + 24; ++s) {
      for (Pattern& q : GeneratePatternSuite(g, count, config, s)) {
        if (max_radius > 0 && q.Radius() > max_radius) continue;
        suite.push_back(std::move(q));
        if (suite.size() >= count) break;
      }
    }
    return suite;
  }
  // Enum-screened mode: gather a wider pool, probe each pattern with the
  // Enum baseline under the embedding cap, and keep the HARDEST patterns
  // the baseline can still finish — easy patterns would let fixed
  // per-fragment costs dominate and wash out the algorithmic contrast
  // the figures measure.
  std::vector<std::pair<double, Pattern>> feasible;
  for (uint64_t s = seed; feasible.size() < count * 3 && s < seed + 24;
       ++s) {
    for (Pattern& q : GeneratePatternSuite(g, count * 2, config, s)) {
      if (max_radius > 0 && q.Radius() > max_radius) continue;
      MatchOptions probe;
      probe.max_isomorphisms = enum_probe_cap;
      WallTimer timer;
      if (!EnumMatcher::Evaluate(q, g, probe).ok()) continue;
      double t = timer.ElapsedSeconds();
      if (t > 20.0) continue;  // keep the whole-suite budget sane
      feasible.emplace_back(t, std::move(q));
      if (feasible.size() >= count * 3) break;
    }
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Pattern> suite;
  for (auto& [t, q] : feasible) {
    if (suite.size() >= count) break;
    suite.push_back(std::move(q));
  }
  return suite;
}

}  // namespace qgp::bench
