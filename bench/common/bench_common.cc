#include "bench/common/bench_common.h"

#include <algorithm>
#include <cinttypes>
#include <utility>

#include "core/enum_matcher.h"

namespace qgp::bench {

namespace {

// Minimal JSON string escaping: quotes, backslashes, control chars.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no NaN/Inf; clamp to null-free 0 and format with enough
// precision for millisecond timings.
void PrintJsonNumber(std::FILE* f, double v) {
  if (v != v || v > 1e300 || v < -1e300) v = 0;
  std::fprintf(f, "%.6g", v);
}

void PrintStats(std::FILE* f, const MatchStats& s) {
  std::fprintf(
      f,
      "{\"isomorphisms_enumerated\":%" PRIu64 ",\"witness_searches\":%" PRIu64
      ",\"search_extensions\":%" PRIu64 ",\"candidates_initial\":%" PRIu64
      ",\"candidates_pruned\":%" PRIu64 ",\"focus_candidates_checked\":%" PRIu64
      ",\"inc_candidates_checked\":%" PRIu64 ",\"balls_built\":%" PRIu64 "}",
      s.isomorphisms_enumerated, s.witness_searches, s.search_extensions,
      s.candidates_initial, s.candidates_pruned, s.focus_candidates_checked,
      s.inc_candidates_checked, s.balls_built);
}

}  // namespace

void BenchReporter::Add(const std::string& config, double wall_ms,
                        std::vector<std::pair<std::string, double>> extra,
                        const MatchStats* stats) {
  Row row;
  row.config = config;
  row.wall_ms = wall_ms;
  row.extra = std::move(extra);
  if (stats != nullptr) row.stats = *stats;
  rows_.push_back(std::move(row));
}

std::string BenchReporter::OutputDir() {
  return GetEnvString("QGP_BENCH_OUT", ".");
}

bool BenchReporter::Write() {
  if (written_) return true;
  written_ = true;
  const std::string path = OutputDir() + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReporter: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"bench\": \"%s\",\n",
               JsonEscape(name_).c_str());
  std::fprintf(f, "  \"scale\": \"%s\",\n", BenchScaleName(GetBenchScale()));
  std::fprintf(f, "  \"scale_factor\": ");
  PrintJsonNumber(f, ScaleFactor());
  std::fprintf(f, ",\n  \"git_rev\": \"%s\",\n",
               JsonEscape(GetEnvString("QGP_GIT_REV", "unknown")).c_str());
  std::fprintf(f, "  \"rows\": [");
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    std::fprintf(f, "%s\n    {\"config\": \"%s\", \"wall_ms\": ",
                 i == 0 ? "" : ",", JsonEscape(r.config).c_str());
    PrintJsonNumber(f, r.wall_ms);
    if (!r.extra.empty()) {
      std::fprintf(f, ", \"metrics\": {");
      for (size_t k = 0; k < r.extra.size(); ++k) {
        std::fprintf(f, "%s\"%s\": ", k == 0 ? "" : ", ",
                     JsonEscape(r.extra[k].first).c_str());
        PrintJsonNumber(f, r.extra[k].second);
      }
      std::fprintf(f, "}");
    }
    if (r.stats.has_value()) {
      std::fprintf(f, ", \"stats\": ");
      PrintStats(f, *r.stats);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  const bool ok = std::fclose(f) == 0;
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

std::vector<Pattern> MakeSuite(const Graph& g, size_t count,
                               const PatternGenConfig& config, uint64_t seed,
                               int max_radius, uint64_t enum_probe_cap) {
  if (enum_probe_cap == 0) {
    std::vector<Pattern> suite;
    for (uint64_t s = seed; suite.size() < count && s < seed + 24; ++s) {
      for (Pattern& q : GeneratePatternSuite(g, count, config, s)) {
        if (max_radius > 0 && q.Radius() > max_radius) continue;
        suite.push_back(std::move(q));
        if (suite.size() >= count) break;
      }
    }
    return suite;
  }
  // Enum-screened mode: gather a wider pool, probe each pattern with the
  // Enum baseline under the embedding cap, and keep the HARDEST patterns
  // the baseline can still finish — easy patterns would let fixed
  // per-fragment costs dominate and wash out the algorithmic contrast
  // the figures measure.
  std::vector<std::pair<double, Pattern>> feasible;
  for (uint64_t s = seed; feasible.size() < count * 3 && s < seed + 24;
       ++s) {
    for (Pattern& q : GeneratePatternSuite(g, count * 2, config, s)) {
      if (max_radius > 0 && q.Radius() > max_radius) continue;
      MatchOptions probe;
      probe.max_isomorphisms = enum_probe_cap;
      WallTimer timer;
      if (!EnumMatcher::Evaluate(q, g, probe).ok()) continue;
      double t = timer.ElapsedSeconds();
      if (t > 20.0) continue;  // keep the whole-suite budget sane
      feasible.emplace_back(t, std::move(q));
      if (feasible.size() >= count * 3) break;
    }
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Pattern> suite;
  for (auto& [t, q] : feasible) {
    if (suite.size() >= count) break;
    suite.push_back(std::move(q));
  }
  return suite;
}

}  // namespace qgp::bench
