#include "bench/common/bench_common.h"

#include <algorithm>
#include <utility>

#include "core/enum_matcher.h"

namespace qgp::bench {

std::vector<Pattern> MakeSuite(const Graph& g, size_t count,
                               const PatternGenConfig& config, uint64_t seed,
                               int max_radius, uint64_t enum_probe_cap) {
  if (enum_probe_cap == 0) {
    std::vector<Pattern> suite;
    for (uint64_t s = seed; suite.size() < count && s < seed + 24; ++s) {
      for (Pattern& q : GeneratePatternSuite(g, count, config, s)) {
        if (max_radius > 0 && q.Radius() > max_radius) continue;
        suite.push_back(std::move(q));
        if (suite.size() >= count) break;
      }
    }
    return suite;
  }
  // Enum-screened mode: gather a wider pool, probe each pattern with the
  // Enum baseline under the embedding cap, and keep the HARDEST patterns
  // the baseline can still finish — easy patterns would let fixed
  // per-fragment costs dominate and wash out the algorithmic contrast
  // the figures measure.
  std::vector<std::pair<double, Pattern>> feasible;
  for (uint64_t s = seed; feasible.size() < count * 3 && s < seed + 24;
       ++s) {
    for (Pattern& q : GeneratePatternSuite(g, count * 2, config, s)) {
      if (max_radius > 0 && q.Radius() > max_radius) continue;
      MatchOptions probe;
      probe.max_isomorphisms = enum_probe_cap;
      WallTimer timer;
      if (!EnumMatcher::Evaluate(q, g, probe).ok()) continue;
      double t = timer.ElapsedSeconds();
      if (t > 20.0) continue;  // keep the whole-suite budget sane
      feasible.emplace_back(t, std::move(q));
      if (feasible.size() >= count * 3) break;
    }
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Pattern> suite;
  for (auto& [t, q] : feasible) {
    if (suite.size() >= count) break;
    suite.push_back(std::move(q));
  }
  return suite;
}

}  // namespace qgp::bench
