// Figure 8(g): varying pattern size |Q| from (3,5) to (7,9) on the YAGO2
// substitute, n = 8, pa = 30%, one negated edge.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(g): varying |Q| (YAGO2)",
              "(|VQ|,|EQ|) from (3,5) to (7,9); n=8, pa=30%, |E-Q|=1",
              "larger |Q| costs more; sparser YAGO2 cheaper than Pokec");
  qgp::Graph g = MakeYagoLike(8000);
  PrintGraphLine("yago2-like", g);
  qgp::DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  auto part = qgp::DPar(g, dc);
  if (!part.ok()) return 1;
  BenchReporter reporter("fig8g_vary_q_knowledge");
  std::printf("\n");
  PrintAlgoHeader("|Q|");
  for (size_t vq : {3, 4, 5, 6, 7}) {
    size_t eq = vq + 2;
    std::vector<qgp::Pattern> suite = MakeSuite(g, 2, PatternConfig(vq, eq, 30.0, 1), 503 + vq, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
    if (suite.empty()) {
      std::printf("   (%zu,%zu)  pattern generation failed\n", vq, eq);
      continue;
    }
    char label[16];
    std::snprintf(label, sizeof(label), "(%zu,%zu)", vq, eq);
    RunAndPrintRow(label, suite, *part, &reporter);
  }
  return 0;
}
