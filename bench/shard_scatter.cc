// Sharded scatter-gather overhead bench: the same §7-style workload
// evaluated by one QueryEngine and by a ShardedEngine at 1, 2 and 4
// in-process shards over the identical graph. Every sharded answer set
// is identity-asserted against the single engine (a faster wrong
// coordinator is not a result), so the rows isolate what sharding
// itself costs or buys:
//
//   * single/suite         — the reference pass, one engine;
//   * shardsN/suite        — the same pass scattered over N shards;
//   * per-row metrics      — summed answers, the slowest shard's wall
//                            clock (the scatter's critical path) and
//                            gather_overhead_ms = coordinator wall
//                            minus that critical path, i.e. the cost of
//                            fan-out threads + answer mapping + merge.
//
// Emits BENCH_shard_scatter.json; the shards1 row is the pure
// coordination tax (one shard, zero distribution win).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/bench_common.h"
#include "engine/query_engine.h"
#include "shard/sharded_engine.h"

using namespace qgp;
using namespace qgp::bench;
using shard::ShardedEngine;
using shard::ShardedOptions;

namespace {

void Die(const char* what) {
  std::printf("FATAL: %s\n", what);
  std::exit(1);
}

}  // namespace

int main() {
  PrintHeader("shard_scatter — multi-fragment serving coordinator",
              "one graph, 1/2/4 in-process shards vs a single engine",
              "answers byte-identical; gather overhead is the tracked cost");
  Graph g = MakePokecLike(600);
  PrintGraphLine("graph", g);
  BenchReporter reporter("shard_scatter");

  const int d = 2;
  std::vector<Pattern> suite =
      MakeSuite(g, 6, PatternConfig(4, 5, 30.0, 0), /*seed=*/303,
                /*max_radius=*/d);
  if (suite.empty()) Die("pattern generation produced an empty workload");
  std::printf("workload: %zu patterns (radius <= %d)\n\n", suite.size(), d);

  EngineOptions engine_options;
  engine_options.num_threads = 2;

  // Reference pass: the single engine, same per-shard thread budget.
  QueryEngine single(&g, engine_options);
  std::vector<AnswerSet> reference;
  size_t total_answers = 0;
  const double single_ms = TimeSeconds([&] {
                             for (const Pattern& p : suite) {
                               QuerySpec spec;
                               spec.pattern = p;
                               auto out = single.Submit(spec);
                               if (!out.ok()) Die("single-engine query failed");
                               total_answers += out->answers.size();
                               reference.push_back(std::move(out->answers));
                             }
                           }) *
                           1000.0;
  std::printf("%-14s %10.2f ms   answers=%zu\n", "single/suite", single_ms,
              total_answers);
  reporter.Add("single/suite", single_ms,
               {{"answers", static_cast<double>(total_answers)},
                {"patterns", static_cast<double>(suite.size())}});

  for (size_t shards : {1u, 2u, 4u}) {
    ShardedOptions sopts;
    sopts.num_shards = shards;
    sopts.d = d;
    sopts.engine = engine_options;
    auto sharded = ShardedEngine::Create(g, sopts);
    if (!sharded.ok()) Die("ShardedEngine::Create failed");

    double critical_path_ms = 0;  // sum over queries of slowest shard
    double coordinator_ms = 0;    // sum of ShardedOutcome wall clocks
    const double wall_ms =
        TimeSeconds([&] {
          for (size_t i = 0; i < suite.size(); ++i) {
            QuerySpec spec;
            spec.pattern = suite[i];
            auto out = (*sharded)->Submit(spec);
            if (!out.ok()) Die("sharded query failed");
            // Identity gate: sharding may never change an answer.
            if (out->answers != reference[i]) Die("sharded answers diverged");
            double slowest = 0;
            for (const auto& slice : out->shards) {
              if (!slice.ok) Die("shard slice failed");
              if (slice.wall_ms > slowest) slowest = slice.wall_ms;
            }
            critical_path_ms += slowest;
            coordinator_ms += out->wall_ms;
          }
        }) *
        1000.0;
    const double gather_overhead_ms = coordinator_ms - critical_path_ms;
    const std::string config = "shards" + std::to_string(shards) + "/suite";
    std::printf("%-14s %10.2f ms   slowest-shard=%.2f ms  gather=%.2f ms\n",
                config.c_str(), wall_ms, critical_path_ms, gather_overhead_ms);
    reporter.Add(config, wall_ms,
                 {{"answers", static_cast<double>(total_answers)},
                  {"num_shards", static_cast<double>(shards)},
                  {"critical_path_ms", critical_path_ms},
                  {"gather_overhead_ms", gather_overhead_ms}});
  }

  if (!reporter.Write()) Die("failed to write BENCH_shard_scatter.json");
  return 0;
}
