// Micro-benchmark for the DMatch hot path (no google-benchmark
// dependency): candidate-set restriction kernels (the seed's sorted-span
// scan vs the bitset/galloping hybrid) on dense and sparse balls, plus
// QMatch end to end. Emits BENCH_micro_dmatch.json; the
// "restrict/dense/optimized" row's speedup_vs_baseline metric is the
// tracked number for the hot-path optimization.
#include <algorithm>
#include <iterator>

#include "bench/common/bench_common.h"
#include "core/candidate_space.h"
#include "core/qmatch.h"
#include "graph/graph_algorithms.h"

namespace qgp::bench {
namespace {

// The seed's RestrictStratifiedToBall, kept verbatim as the measured
// baseline: per-element bitset probing of the smaller side, else
// std::set_intersection.
std::vector<std::vector<VertexId>> BaselineRestrict(
    const CandidateSpace& cs, std::span<const VertexId> ball) {
  std::vector<std::vector<VertexId>> local(cs.num_pattern_nodes());
  for (PatternNodeId u = 0; u < cs.num_pattern_nodes(); ++u) {
    const std::vector<VertexId>& full = cs.stratified(u);
    if (ball.size() < full.size()) {
      for (VertexId v : ball) {
        if (cs.InStratified(u, v)) local[u].push_back(v);
      }
    } else {
      std::set_intersection(full.begin(), full.end(), ball.begin(),
                            ball.end(), std::back_inserter(local[u]));
    }
  }
  return local;
}

size_t TotalSize(const std::vector<std::vector<VertexId>>& sets) {
  size_t n = 0;
  for (const auto& s : sets) n += s.size();
  return n;
}

// Times `fn` often enough for a stable reading; returns avg ms per call.
template <typename Fn>
double TimePerCall(Fn&& fn, size_t* iters_out) {
  // Calibrate.
  WallTimer cal;
  fn();
  double once = cal.ElapsedSeconds();
  size_t iters = once > 0 ? static_cast<size_t>(0.3 / once) : 2000;
  iters = std::clamp<size_t>(iters, 5, 2000);
  WallTimer timer;
  for (size_t i = 0; i < iters; ++i) fn();
  if (iters_out != nullptr) *iters_out = iters;
  return timer.ElapsedMillis() / static_cast<double>(iters);
}

// One restriction scenario: ball around `src` at `radius`, baseline scan
// vs the hybrid kernels (with the ball bitset available, as DMatch now
// runs them).
void RestrictCase(const char* name, const Graph& g, const CandidateSpace& cs,
                  VertexId src, int radius, BenchReporter& reporter) {
  DynamicBitset all_labels(g.dict().size());
  for (Label l = 0; l < g.dict().size(); ++l) all_labels.Set(l);
  BallScratch ball_scratch;
  bool complete = false;
  std::span<const VertexId> ball =
      KHopBallFilteredScratch(g, src, radius, all_labels, g.num_vertices(),
                              &ball_scratch, &complete);
  std::span<const uint64_t> ball_words = ball_scratch.visited.words();

  volatile size_t sink = 0;
  size_t base_iters = 0;
  double base_ms = TimePerCall(
      [&] { sink = sink + TotalSize(BaselineRestrict(cs, ball)); },
      &base_iters);

  std::vector<std::vector<VertexId>> scratch_out;
  size_t opt_iters = 0;
  double opt_ms = TimePerCall(
      [&] {
        cs.RestrictStratifiedToBall(ball, ball_words, &scratch_out);
        sink = sink + TotalSize(scratch_out);
      },
      &opt_iters);

  // Answer-set equality is asserted by tests; assert it here too so the
  // speedup can never come from computing something different.
  if (BaselineRestrict(cs, ball) != scratch_out) {
    std::printf("FATAL: %s kernels disagree with baseline\n", name);
    std::exit(1);
  }

  double speedup = opt_ms > 0 ? base_ms / opt_ms : 0.0;
  std::printf("%-16s |ball|=%-7zu baseline %9.4f ms  optimized %9.4f ms"
              "  speedup %5.2fx\n",
              name, ball.size(), base_ms, opt_ms, speedup);
  reporter.Add(std::string("restrict/") + name + "/baseline", base_ms,
               {{"ball", static_cast<double>(ball.size())},
                {"iters", static_cast<double>(base_iters)}});
  reporter.Add(std::string("restrict/") + name + "/optimized", opt_ms,
               {{"ball", static_cast<double>(ball.size())},
                {"iters", static_cast<double>(opt_iters)},
                {"speedup_vs_baseline", speedup}});
}

}  // namespace
}  // namespace qgp::bench

int main() {
  using namespace qgp::bench;
  using namespace qgp;
  PrintHeader("Micro: DMatch hot-path kernels",
              "candidate-set restriction (dense + sparse ball), QMatch e2e",
              "bitset/galloping hybrid vs the seed's sorted-span scan");
  BenchReporter reporter("micro_dmatch");
  Graph g = MakePokecLike(2000);
  PrintGraphLine("pokec-like", g);
  std::vector<Pattern> suite =
      MakeSuite(g, 3, PatternConfig(5, 7, 30.0, 0), 77);
  if (suite.empty()) {
    std::printf("pattern generation failed\n");
    return 1;
  }
  MatchOptions opts;
  auto pi = suite[0].Pi();
  if (!pi.ok()) {
    std::printf("Pi failed: %s\n", pi.status().ToString().c_str());
    return 1;
  }
  auto cs = CandidateSpace::Build(pi->first, g, opts, nullptr);
  if (!cs.ok()) {
    std::printf("candidate space failed: %s\n",
                cs.status().ToString().c_str());
    return 1;
  }

  // Densest case: the ball around the busiest vertex at radius 2 covers
  // most of the graph, so every stratified set intersects a large ball.
  VertexId hub = 0;
  size_t hub_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    size_t d = g.OutDegree(v) + g.InDegree(v);
    if (d > hub_deg) {
      hub_deg = d;
      hub = v;
    }
  }
  std::printf("\n");
  RestrictCase("dense", g, *cs, hub, 2, reporter);

  // Sparse case: a 1-hop ball around a median-degree vertex — big enough
  // to measure, small enough that the galloping/probe paths (not the
  // word-AND) are what runs.
  std::vector<VertexId> by_degree(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return g.OutDegree(a) + g.InDegree(a) < g.OutDegree(b) + g.InDegree(b);
  });
  VertexId median = by_degree[by_degree.size() / 2];
  RestrictCase("sparse", g, *cs, median, 1, reporter);

  // End to end: sequential QMatch over the suite, counters included.
  MatchStats stats;
  double seconds = 0;
  size_t answers = 0;
  for (const Pattern& q : suite) {
    seconds += TimeSeconds([&] {
      auto r = QMatch::Evaluate(q, g, opts, &stats);
      if (r.ok()) answers += r->size();
    });
  }
  std::printf("\nQMatch end-to-end: %.3fs, answers=%zu\n", seconds, answers);
  reporter.Add("qmatch/suite", seconds * 1e3,
               {{"answers", static_cast<double>(answers)},
                {"patterns", static_cast<double>(suite.size())}},
               &stats);
  return 0;
}
