// Micro-benchmark for the DMatch hot path (no google-benchmark
// dependency): candidate-set restriction kernels (the seed's sorted-span
// scan vs the bitset/galloping hybrid) on dense and sparse balls,
// CandidateSpace::Build (the cold-start phase) serial vs a thread-count
// sweep plus the label/degree intern pool, and QMatch end to end with the
// Build phase split out. Emits BENCH_micro_dmatch.json; the
// "restrict/dense/optimized" and "build/*" rows are the tracked numbers
// for the hot-path and construction-phase work, and tools/compare_bench.py
// gates CI on them.
#include <algorithm>
#include <iterator>

#include "bench/common/bench_common.h"
#include "common/thread_pool.h"
#include "core/candidate_cache.h"
#include "core/candidate_space.h"
#include "core/qmatch.h"
#include "graph/graph_algorithms.h"
#include "parallel/dpar.h"

namespace qgp::bench {
namespace {

// The seed's RestrictStratifiedToBall, kept verbatim as the measured
// baseline: per-element bitset probing of the smaller side, else
// std::set_intersection.
std::vector<std::vector<VertexId>> BaselineRestrict(
    const CandidateSpace& cs, std::span<const VertexId> ball) {
  std::vector<std::vector<VertexId>> local(cs.num_pattern_nodes());
  for (PatternNodeId u = 0; u < cs.num_pattern_nodes(); ++u) {
    const std::span<const VertexId> full = cs.stratified(u);
    if (ball.size() < full.size()) {
      for (VertexId v : ball) {
        if (cs.InStratified(u, v)) local[u].push_back(v);
      }
    } else {
      std::set_intersection(full.begin(), full.end(), ball.begin(),
                            ball.end(), std::back_inserter(local[u]));
    }
  }
  return local;
}

size_t TotalSize(const std::vector<std::vector<VertexId>>& sets) {
  size_t n = 0;
  for (const auto& s : sets) n += s.size();
  return n;
}

// Times `fn` often enough for a stable reading; returns avg ms per call.
template <typename Fn>
double TimePerCall(Fn&& fn, size_t* iters_out) {
  // Calibrate.
  WallTimer cal;
  fn();
  double once = cal.ElapsedSeconds();
  size_t iters = once > 0 ? static_cast<size_t>(0.3 / once) : 2000;
  iters = std::clamp<size_t>(iters, 5, 2000);
  WallTimer timer;
  for (size_t i = 0; i < iters; ++i) fn();
  if (iters_out != nullptr) *iters_out = iters;
  return timer.ElapsedMillis() / static_cast<double>(iters);
}

// One restriction scenario: ball around `src` at `radius`, baseline scan
// vs the hybrid kernels (with the ball bitset available, as DMatch now
// runs them).
void RestrictCase(const char* name, const Graph& g, const CandidateSpace& cs,
                  VertexId src, int radius, BenchReporter& reporter) {
  DynamicBitset all_labels(g.dict().size());
  for (Label l = 0; l < g.dict().size(); ++l) all_labels.Set(l);
  BallScratch ball_scratch;
  bool complete = false;
  std::span<const VertexId> ball =
      KHopBallFilteredScratch(g, src, radius, all_labels, g.num_vertices(),
                              &ball_scratch, &complete);
  std::span<const uint64_t> ball_words = ball_scratch.visited.words();

  volatile size_t sink = 0;
  size_t base_iters = 0;
  double base_ms = TimePerCall(
      [&] { sink = sink + TotalSize(BaselineRestrict(cs, ball)); },
      &base_iters);

  std::vector<std::vector<VertexId>> scratch_out;
  size_t opt_iters = 0;
  double opt_ms = TimePerCall(
      [&] {
        cs.RestrictStratifiedToBall(ball, ball_words, &scratch_out);
        sink = sink + TotalSize(scratch_out);
      },
      &opt_iters);

  // Answer-set equality is asserted by tests; assert it here too so the
  // speedup can never come from computing something different.
  if (BaselineRestrict(cs, ball) != scratch_out) {
    std::printf("FATAL: %s kernels disagree with baseline\n", name);
    std::exit(1);
  }

  double speedup = opt_ms > 0 ? base_ms / opt_ms : 0.0;
  std::printf("%-16s |ball|=%-7zu baseline %9.4f ms  optimized %9.4f ms"
              "  speedup %5.2fx\n",
              name, ball.size(), base_ms, opt_ms, speedup);
  reporter.Add(std::string("restrict/") + name + "/baseline", base_ms,
               {{"ball", static_cast<double>(ball.size())},
                {"iters", static_cast<double>(base_iters)}});
  reporter.Add(std::string("restrict/") + name + "/optimized", opt_ms,
               {{"ball", static_cast<double>(ball.size())},
                {"iters", static_cast<double>(opt_iters)},
                {"speedup_vs_baseline", speedup}});
}

size_t TotalCandidates(const CandidateSpace& cs) {
  size_t n = 0;
  for (PatternNodeId u = 0; u < cs.num_pattern_nodes(); ++u) {
    n += cs.stratified(u).size() + cs.good(u).size();
  }
  return n;
}

// Build-phase sweep: serial CandidateSpace::Build vs a pool at 1/2/4/8
// threads (the default simulation-on path QMatch runs), plus the
// non-simulation path with and without the intern pool. Every parallel
// result is checked byte-identical against the serial one — the speedup
// can never come from computing something different.
void BuildCase(const Graph& g, const Pattern& positive,
               BenchReporter& reporter) {
  MatchOptions opts;
  volatile size_t sink = 0;

  size_t serial_iters = 0;
  double serial_ms = TimePerCall(
      [&] {
        auto cs = CandidateSpace::Build(positive, g, opts, nullptr);
        sink = sink + TotalCandidates(*cs);
      },
      &serial_iters);
  std::printf("build/serial            %9.3f ms\n", serial_ms);
  reporter.Add("build/serial", serial_ms,
               {{"iters", static_cast<double>(serial_iters)}});

  auto serial_cs = CandidateSpace::Build(positive, g, opts, nullptr);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    size_t iters = 0;
    double ms = TimePerCall(
        [&] {
          auto cs =
              CandidateSpace::Build(positive, g, opts, nullptr, &pool);
          sink = sink + TotalCandidates(*cs);
        },
        &iters);
    auto par_cs = CandidateSpace::Build(positive, g, opts, nullptr, &pool);
    for (PatternNodeId u = 0; u < serial_cs->num_pattern_nodes(); ++u) {
      const auto s = serial_cs->stratified(u);
      const auto p = par_cs->stratified(u);
      const auto sg = serial_cs->good(u);
      const auto pg = par_cs->good(u);
      if (!std::equal(s.begin(), s.end(), p.begin(), p.end()) ||
          !std::equal(sg.begin(), sg.end(), pg.begin(), pg.end())) {
        std::printf("FATAL: parallel Build diverged at %zu threads\n",
                    threads);
        std::exit(1);
      }
    }
    double speedup = ms > 0 ? serial_ms / ms : 0.0;
    std::printf("build/threads=%zu        %9.3f ms  speedup %5.2fx\n",
                threads, ms, speedup);
    reporter.Add("build/threads=" + std::to_string(threads), ms,
                 {{"iters", static_cast<double>(iters)},
                  {"speedup_vs_serial", speedup}});
  }

  // Intern pool: the plain (no-simulation) build path EnumMatcher and the
  // PQMatch/PEnum fragment workers run, cold vs warm cache.
  MatchOptions plain = opts;
  plain.use_simulation = false;
  size_t cold_iters = 0;
  double cold_ms = TimePerCall(
      [&] {
        auto cs = CandidateSpace::Build(positive, g, plain, nullptr);
        sink = sink + TotalCandidates(*cs);
      },
      &cold_iters);
  CandidateCache cache(g);
  (void)CandidateSpace::Build(positive, g, plain, nullptr, nullptr, &cache);
  size_t warm_iters = 0;
  double warm_ms = TimePerCall(
      [&] {
        auto cs =
            CandidateSpace::Build(positive, g, plain, nullptr, nullptr,
                                  &cache);
        sink = sink + TotalCandidates(*cs);
      },
      &warm_iters);
  double cache_speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  std::printf("build/plain/cold        %9.3f ms\n", cold_ms);
  std::printf("build/plain/interned    %9.3f ms  speedup %5.2fx\n", warm_ms,
              cache_speedup);
  reporter.Add("build/plain/cold", cold_ms,
               {{"iters", static_cast<double>(cold_iters)}});
  reporter.Add("build/plain/interned", warm_ms,
               {{"iters", static_cast<double>(warm_iters)},
                {"speedup_vs_cold", cache_speedup}});
}

// DPar partition phase: serial vs the work-stealing pool (boundary scan,
// border BFS rounds, ball extraction + size estimation, materialization
// all fan out). The pool-built partition is checked IDENTICAL to the
// serial one — the speedup can never come from partitioning differently.
void DParCase(const Graph& g, BenchReporter& reporter) {
  DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  volatile size_t sink = 0;

  size_t serial_iters = 0;
  double serial_ms = TimePerCall(
      [&] {
        auto p = DPar(g, dc);
        if (!p.ok()) std::exit(1);
        sink = sink + p->num_border_nodes;
      },
      &serial_iters);
  std::printf("dpar/partition_phase/serial    %9.3f ms\n", serial_ms);
  reporter.Add("dpar/partition_phase/serial", serial_ms,
               {{"iters", static_cast<double>(serial_iters)},
                {"fragments", static_cast<double>(dc.num_fragments)}});

  auto serial_part = DPar(g, dc);
  ThreadPool pool(4);
  size_t par_iters = 0;
  double par_ms = TimePerCall(
      [&] {
        auto p = DPar(g, dc, nullptr, &pool);
        if (!p.ok()) std::exit(1);
        sink = sink + p->num_border_nodes;
      },
      &par_iters);
  auto par_part = DPar(g, dc, nullptr, &pool);
  if (!serial_part.ok() || !par_part.ok()) {
    std::printf("FATAL: DPar identity-check run failed\n");
    std::exit(1);
  }
  if (!PartitionsIdentical(*serial_part, *par_part)) {
    std::printf("FATAL: pool-parallel DPar diverged from serial\n");
    std::exit(1);
  }
  double speedup = par_ms > 0 ? serial_ms / par_ms : 0.0;
  std::printf("dpar/partition_phase/parallel  %9.3f ms  speedup %5.2fx\n",
              par_ms, speedup);
  reporter.Add("dpar/partition_phase/parallel", par_ms,
               {{"iters", static_cast<double>(par_iters)},
                {"threads", 4.0},
                {"speedup_vs_serial", speedup}});
}

// Work-stealing sweep on a deliberately skewed task set: the ~100x
// heavy tasks are CLUSTERED in the first indices, so a static
// contiguous chunking strands them all on the first worker's chunk
// while the dynamic round-robin deal spreads the heavy chunks and idle
// workers steal the rest. (A periodic heavy pattern would divide evenly
// into the static chunks and measure nothing but dispatch overhead.)
// Both schedules fill the same output slots; the results are asserted
// identical before anything is reported.
void StealSweepCase(BenchReporter& reporter) {
  // Sized so every row sits comfortably ABOVE the bench gate's 2 ms
  // noise floor (~8 ms here): rows that straddle the floor would flip
  // between gated and ungated on every baseline regeneration.
  constexpr size_t kTasks = 1024;
  auto cost_of = [](size_t i) -> uint64_t { return i < 64 ? 60000 : 600; };
  auto work = [&](size_t i) {
    uint64_t h = i * 0x9e3779b97f4a7c15ULL + 1;
    const uint64_t rounds = cost_of(i);
    for (uint64_t r = 0; r < rounds; ++r) {
      h ^= h << 13;
      h ^= h >> 7;
      h ^= h << 17;
    }
    return h;
  };
  std::vector<uint64_t> expected(kTasks);
  for (size_t i = 0; i < kTasks; ++i) expected[i] = work(i);

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> slots(kTasks, 0);
    size_t static_iters = 0;
    double static_ms = TimePerCall(
        [&] {
          pool.ParallelForRange(kTasks, 1, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) slots[i] = work(i);
          });
        },
        &static_iters);
    if (slots != expected) {
      std::printf("FATAL: static schedule produced wrong slots\n");
      std::exit(1);
    }
    const ThreadPool::SchedulerStats before = pool.scheduler_stats();
    std::vector<uint64_t> dyn_slots(kTasks, 0);
    size_t dyn_iters = 0;
    double dyn_ms = TimePerCall(
        [&] {
          pool.ParallelForDynamic(kTasks, 4, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) dyn_slots[i] = work(i);
          });
        },
        &dyn_iters);
    if (dyn_slots != expected) {
      std::printf("FATAL: dynamic schedule produced wrong slots\n");
      std::exit(1);
    }
    const ThreadPool::SchedulerStats after = pool.scheduler_stats();
    const double steals = static_cast<double>(after.total_stolen() -
                                              before.total_stolen()) /
                          static_cast<double>(dyn_iters + 1);
    double speedup = dyn_ms > 0 ? static_ms / dyn_ms : 0.0;
    std::printf(
        "scheduler/steal_sweep threads=%zu  static %8.3f ms  dynamic "
        "%8.3f ms  speedup %5.2fx  steals/run %6.1f\n",
        threads, static_ms, dyn_ms, speedup, steals);
    reporter.Add(
        "scheduler/steal_sweep/static/threads=" + std::to_string(threads),
        static_ms, {{"iters", static_cast<double>(static_iters)}});
    reporter.Add(
        "scheduler/steal_sweep/dynamic/threads=" + std::to_string(threads),
        dyn_ms,
        {{"iters", static_cast<double>(dyn_iters)},
         {"speedup_vs_static", speedup},
         {"steals_per_run", steals}});
  }
}

}  // namespace
}  // namespace qgp::bench

int main() {
  using namespace qgp::bench;
  using namespace qgp;
  PrintHeader("Micro: DMatch hot-path kernels",
              "candidate-set restriction (dense + sparse ball), QMatch e2e",
              "bitset/galloping hybrid vs the seed's sorted-span scan");
  BenchReporter reporter("micro_dmatch");
  Graph g = MakePokecLike(2000);
  PrintGraphLine("pokec-like", g);
  std::vector<Pattern> suite =
      MakeSuite(g, 3, PatternConfig(5, 7, 30.0, 0), 77);
  if (suite.empty()) {
    std::printf("pattern generation failed\n");
    return 1;
  }
  MatchOptions opts;
  auto pi = suite[0].Pi();
  if (!pi.ok()) {
    std::printf("Pi failed: %s\n", pi.status().ToString().c_str());
    return 1;
  }
  auto cs = CandidateSpace::Build(pi->first, g, opts, nullptr);
  if (!cs.ok()) {
    std::printf("candidate space failed: %s\n",
                cs.status().ToString().c_str());
    return 1;
  }

  // Densest case: the ball around the busiest vertex at radius 2 covers
  // most of the graph, so every stratified set intersects a large ball.
  VertexId hub = 0;
  size_t hub_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    size_t d = g.OutDegree(v) + g.InDegree(v);
    if (d > hub_deg) {
      hub_deg = d;
      hub = v;
    }
  }
  std::printf("\n");
  RestrictCase("dense", g, *cs, hub, 2, reporter);

  // Sparse case: a 1-hop ball around a median-degree vertex — big enough
  // to measure, small enough that the galloping/probe paths (not the
  // word-AND) are what runs.
  std::vector<VertexId> by_degree(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return g.OutDegree(a) + g.InDegree(a) < g.OutDegree(b) + g.InDegree(b);
  });
  VertexId median = by_degree[by_degree.size() / 2];
  RestrictCase("sparse", g, *cs, median, 1, reporter);

  // Build phase (cold-start cost): serial vs thread sweep vs interning.
  std::printf("\n");
  BuildCase(g, pi->first, reporter);

  // DPar partition phase: serial vs the work-stealing pool.
  std::printf("\n");
  DParCase(g, reporter);

  // Scheduler: static vs work-stealing dynamic dispatch on skewed tasks.
  std::printf("\n");
  StealSweepCase(reporter);

  // End to end: sequential QMatch over the suite, with the Build phase
  // split out (the Π(Q) candidate-space construction per pattern) so the
  // bench gate can track construction cost separately from matching.
  MatchStats stats;
  double seconds = 0;
  double build_seconds = 0;
  size_t answers = 0;
  for (const Pattern& q : suite) {
    auto q_pi = q.Pi();
    if (q_pi.ok()) {
      build_seconds += TimeSeconds([&] {
        auto built = CandidateSpace::Build(q_pi->first, g, opts, nullptr);
        if (!built.ok()) std::exit(1);
      });
    }
    seconds += TimeSeconds([&] {
      auto r = QMatch::Evaluate(q, g, opts, &stats);
      if (r.ok()) answers += r->size();
    });
  }
  std::printf("\nQMatch end-to-end: %.3fs (build phase %.3fs), answers=%zu\n",
              seconds, build_seconds, answers);
  reporter.Add("qmatch/suite", seconds * 1e3,
               {{"answers", static_cast<double>(answers)},
                {"patterns", static_cast<double>(suite.size())}},
               &stats);
  reporter.Add("qmatch/build_phase", build_seconds * 1e3,
               {{"patterns", static_cast<double>(suite.size())}});
  return 0;
}
