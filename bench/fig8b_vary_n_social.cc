// Figure 8(b): parallel quantified matching on the Pokec substitute,
// varying the worker count n from 4 to 20. |Q| = (6,8,30%,1), d = 2,
// b = 4 intra-fragment threads; simulated-makespan timing.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader(
      "Figure 8(b): PQMatch vs PQMatchs/PQMatchn/PEnum, varying n (Pokec)",
      "|Q|=(6,8,30%,1), d=2, b=4, n in {4,8,12,16,20}",
      "PQMatch ~2.8x faster from n=4 to 20; 3.8x faster than PEnum");
  qgp::Graph g = MakePokecLike(4000);
  PrintGraphLine("pokec-like", g);
  std::vector<qgp::Pattern> suite =
      MakeSuite(g, 2, PatternConfig(6, 8, 30.0, 1), 211, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
  if (suite.empty()) {
    std::printf("pattern generation failed\n");
    return 1;
  }
  std::printf("patterns: %zu of size (6,8,30%%,1), radius <= 2\n\n",
              suite.size());
  BenchReporter reporter("fig8b_vary_n_social");
  PrintAlgoHeader("n");
  double first_pq = 0, last_pq = 0;
  for (size_t n : {4, 8, 12, 16, 20}) {
    qgp::DParConfig dc;
    dc.num_fragments = n;
    dc.d = 2;
    auto part = qgp::DPar(g, dc);
    if (!part.ok()) {
      std::printf("DPar failed: %s\n", part.status().ToString().c_str());
      return 1;
    }
    double pq = RunAndPrintRow("n=" + std::to_string(n), suite, *part,
                               &reporter);
    if (n == 4) first_pq = pq;
    last_pq = pq;
  }
  if (last_pq > 0) {
    std::printf("\nPQMatch speedup n=4 -> n=20: %.2fx (paper: ~2.8x)\n",
                first_pq / last_pq);
  }
  return 0;
}
