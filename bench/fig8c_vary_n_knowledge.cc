// Figure 8(c): parallel quantified matching on the YAGO2 substitute,
// varying the worker count n from 4 to 20.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader(
      "Figure 8(c): PQMatch vs PQMatchs/PQMatchn/PEnum, varying n (YAGO2)",
      "|Q|=(6,8,30%,1), d=2, b=4, n in {4,8,12,16,20}",
      "PQMatch ~3.2x faster from n=4 to 20; 5.8x faster than PEnum");
  qgp::Graph g = MakeYagoLike(8000);
  PrintGraphLine("yago2-like", g);
  std::vector<qgp::Pattern> suite =
      MakeSuite(g, 2, PatternConfig(6, 8, 30.0, 1), 307, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
  if (suite.empty()) {
    std::printf("pattern generation failed\n");
    return 1;
  }
  std::printf("patterns: %zu of size (6,8,30%%,1), radius <= 2\n\n",
              suite.size());
  BenchReporter reporter("fig8c_vary_n_knowledge");
  PrintAlgoHeader("n");
  double first_pq = 0, last_pq = 0;
  for (size_t n : {4, 8, 12, 16, 20}) {
    qgp::DParConfig dc;
    dc.num_fragments = n;
    dc.d = 2;
    auto part = qgp::DPar(g, dc);
    if (!part.ok()) {
      std::printf("DPar failed: %s\n", part.status().ToString().c_str());
      return 1;
    }
    double pq = RunAndPrintRow("n=" + std::to_string(n), suite, *part,
                               &reporter);
    if (n == 4) first_pq = pq;
    last_pq = pq;
  }
  if (last_pq > 0) {
    std::printf("\nPQMatch speedup n=4 -> n=20: %.2fx (paper: ~3.2x)\n",
                first_pq / last_pq);
  }
  return 0;
}
