// Ablation A1 (Appendix B): contribution of each DMatch optimization —
// dual-simulation candidate filtering, quantifier upper-bound pruning,
// potential-score ordering, and early-stopped counting. Each row turns
// ONE strategy off; the last row turns all off.
#include "bench/common/bench_common.h"
#include "core/qmatch.h"

namespace qgp::bench {
namespace {

struct Variant {
  const char* name;
  MatchOptions opts;
};

void Run(const Graph& g, const std::vector<Pattern>& suite, const Variant& v,
         BenchReporter& reporter) {
  MatchStats stats;
  double seconds = 0;
  size_t answers = 0;
  bool ok = true;
  for (const Pattern& q : suite) {
    seconds += TimeSeconds([&] {
      auto r = QMatch::Evaluate(q, g, v.opts, &stats);
      if (r.ok()) {
        answers += r->size();
      } else {
        ok = false;
      }
    });
  }
  std::printf("%-18s  %10.3fs  ext=%-12llu witness=%-10llu answers=%zu%s\n",
              v.name, seconds,
              static_cast<unsigned long long>(stats.search_extensions),
              static_cast<unsigned long long>(stats.witness_searches),
              answers, ok ? "" : "  (error)");
  reporter.Add(v.name, seconds * 1e3,
               {{"answers", static_cast<double>(answers)},
                {"ok", ok ? 1.0 : 0.0}},
               &stats);
}

}  // namespace
}  // namespace qgp::bench

int main() {
  using namespace qgp::bench;
  PrintHeader("Ablation: DMatch optimization strategies (Appendix B)",
              "QMatch on pokec-like, (6,8,30%,1); one strategy off per row",
              "optimizations cut verification cost ~1.2-1.3x overall");
  qgp::Graph g = MakePokecLike(4000);
  PrintGraphLine("pokec-like", g);
  std::vector<qgp::Pattern> suite =
      MakeSuite(g, 3, PatternConfig(6, 8, 30.0, 1), 1101);
  if (suite.empty()) {
    std::printf("pattern generation failed\n");
    return 1;
  }
  std::printf("\n");

  Variant all{"all-on", {}};
  Variant no_sim{"no-simulation", {}};
  no_sim.opts.use_simulation = false;
  Variant no_prune{"no-quant-pruning", {}};
  no_prune.opts.use_quantifier_pruning = false;
  Variant no_pot{"no-potential", {}};
  no_pot.opts.use_potential_ordering = false;
  Variant no_early{"no-early-stop", {}};
  no_early.opts.early_stop_counting = false;
  Variant none{"all-off", {}};
  none.opts.use_simulation = false;
  none.opts.use_quantifier_pruning = false;
  none.opts.use_potential_ordering = false;
  none.opts.early_stop_counting = false;

  BenchReporter reporter("ablation_pruning");
  for (const Variant& v : {all, no_sim, no_prune, no_pot, no_early, none}) {
    Run(g, suite, v, reporter);
  }
  return 0;
}
