// Figure 8(j): varying the aggregate pa from 10% to 90% on the Pokec
// substitute; n = 8, (6,8), |E−Q| = 1. Larger pa prunes more candidates,
// so the QMatch family gets faster; PEnum enumerates everything either
// way and stays flat.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(j): varying pa (Pokec)",
              "pa in {10,30,50,70,90}%; n=8, (6,8), |E-Q|=1",
              "QMatch family faster with larger pa; PEnum indifferent");
  qgp::Graph g = MakePokecLike(4000);
  PrintGraphLine("pokec-like", g);
  qgp::DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  auto part = qgp::DPar(g, dc);
  if (!part.ok()) return 1;
  // One base suite; the sweep rewrites the ratio in place so the
  // topology is identical across pa values.
  std::vector<qgp::Pattern> base =
      MakeSuite(g, 2, PatternConfig(6, 8, 30.0, 1), 801, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
  if (base.empty()) {
    std::printf("pattern generation failed\n");
    return 1;
  }
  BenchReporter reporter("fig8j_vary_p_social");
  std::printf("\n");
  PrintAlgoHeader("pa%");
  for (double pa : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    std::vector<qgp::Pattern> suite;
    for (const qgp::Pattern& q : base) {
      suite.push_back(WithRatioPercent(q, pa));
    }
    RunAndPrintRow("pa=" + std::to_string(static_cast<int>(pa)), suite,
                   *part, &reporter);
  }
  return 0;
}
