// Multi-query engine workload: the server scenario the engine layer
// exists for. A Pokec-like graph serves a request mix drawn from two
// §7-style pattern families, and the bench compares
//
//   * standalone per-query evaluation (the status quo ante: every query
//     rebuilds its candidate filters from scratch; pool shared, so the
//     delta is purely the cache),
//   * an engine cold pass (first time each filter is computed, now
//     retained), and
//   * the engine steady state (warm cache — a server draining repeat
//     traffic), including an interleaved-vs-grouped family ordering
//     comparison and a thread sweep.
//
// Answers are asserted identical across every configuration before
// anything is reported — the throughput win can never come from
// computing something different. Emits BENCH_engine_workload.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/bench_common.h"
#include "common/thread_pool.h"
#include "core/candidate_space.h"
#include "core/qmatch.h"
#include "engine/query_engine.h"

using namespace qgp;
using namespace qgp::bench;

namespace {

// One request mix: two families, interleaved the way concurrent clients
// would submit them. Family A: mid-size ratio patterns; family B: larger
// patterns with a negated edge (exercising the positified builds, which
// share most filter keys with their base pattern).
std::vector<QuerySpec> MakeWorkload(const Graph& g, bool interleaved) {
  std::vector<Pattern> family_a =
      MakeSuite(g, 6, PatternConfig(4, 5, 30.0, 0), /*seed=*/101);
  std::vector<Pattern> family_b =
      MakeSuite(g, 6, PatternConfig(5, 6, 50.0, 1), /*seed=*/202);
  std::vector<QuerySpec> workload;
  auto add = [&](const Pattern& q, const char* family, size_t i) {
    QuerySpec spec;
    spec.pattern = q;
    spec.tag = std::string(family) + "/" + std::to_string(i);
    workload.push_back(std::move(spec));
  };
  if (interleaved) {
    for (size_t i = 0; i < family_a.size() || i < family_b.size(); ++i) {
      if (i < family_a.size()) add(family_a[i], "A", i);
      if (i < family_b.size()) add(family_b[i], "B", i);
    }
  } else {
    for (size_t i = 0; i < family_a.size(); ++i) add(family_a[i], "A", i);
    for (size_t i = 0; i < family_b.size(); ++i) add(family_b[i], "B", i);
  }
  return workload;
}

std::vector<AnswerSet> Answers(const std::vector<QueryOutcome>& outcomes) {
  std::vector<AnswerSet> answers;
  answers.reserve(outcomes.size());
  for (const QueryOutcome& o : outcomes) answers.push_back(o.answers);
  return answers;
}

void Die(const char* what) {
  std::printf("FATAL: %s\n", what);
  std::exit(1);
}

}  // namespace

int main() {
  PrintHeader("engine_workload — multi-query engine vs per-query runs",
              "Pokec-like graph, 2 pattern families, repeat traffic",
              "warm shared-cache batches beat cold per-query evaluation");
  Graph g = MakePokecLike(2000);
  PrintGraphLine("graph", g);
  BenchReporter reporter("engine_workload");

  std::vector<QuerySpec> workload = MakeWorkload(g, /*interleaved=*/true);
  const size_t n = workload.size();
  std::printf("workload: %zu queries (families interleaved)\n\n", n);
  if (n == 0) Die("pattern generation produced an empty workload");

  // --- Standalone per-query baseline. The pool is shared (constructing
  // one per query would only make this slower), so the engine's edge
  // below is purely cross-query candidate reuse.
  ThreadPool pool(1);
  std::vector<AnswerSet> standalone_answers(n);
  double standalone_s = TimeSeconds([&] {
    for (size_t i = 0; i < n; ++i) {
      auto r = QMatch::Evaluate(workload[i].pattern, g, workload[i].options,
                                nullptr, &pool);
      if (!r.ok()) Die("standalone evaluation failed");
      standalone_answers[i] = std::move(r).value();
    }
  });
  reporter.Add("workload/standalone/per_query", standalone_s * 1000.0,
               {{"queries", static_cast<double>(n)}});
  std::printf("standalone per-query : %8.2f ms\n", standalone_s * 1000.0);

  // --- Engine cold pass (first computation of every filter) and warm
  // steady state (repeat traffic against the retained cache).
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  QueryEngine engine(&g, engine_options);
  std::vector<QueryOutcome> cold_outcomes;
  double cold_s = TimeSeconds([&] {
    auto r = engine.RunBatch(workload);
    if (!r.ok()) Die("engine cold batch failed");
    cold_outcomes = std::move(r).value();
  });
  if (Answers(cold_outcomes) != standalone_answers) {
    Die("engine cold answers differ from standalone");
  }
  const EngineStats after_cold = engine.stats();
  reporter.Add("workload/engine/cold", cold_s * 1000.0,
               {{"queries", static_cast<double>(n)},
                {"cache_hits", static_cast<double>(after_cold.cache_hits)},
                {"cache_misses",
                 static_cast<double>(after_cold.cache_misses)},
                {"hit_ratio", after_cold.HitRatio()}});
  std::printf("engine cold batch    : %8.2f ms  (hit ratio %.2f)\n",
              cold_s * 1000.0, after_cold.HitRatio());

  constexpr int kWarmReps = 3;
  double warm_s = 0;
  for (int rep = 0; rep < kWarmReps; ++rep) {
    std::vector<QueryOutcome> warm_outcomes;
    warm_s += TimeSeconds([&] {
      auto r = engine.RunBatch(workload);
      if (!r.ok()) Die("engine warm batch failed");
      warm_outcomes = std::move(r).value();
    });
    if (Answers(warm_outcomes) != standalone_answers) {
      Die("engine warm answers differ from standalone");
    }
  }
  warm_s /= kWarmReps;
  const EngineStats total = engine.stats();
  const uint64_t warm_hits = total.cache_hits - after_cold.cache_hits;
  const uint64_t warm_misses = total.cache_misses - after_cold.cache_misses;
  const double warm_ratio =
      warm_hits + warm_misses == 0
          ? 0.0
          : static_cast<double>(warm_hits) / (warm_hits + warm_misses);
  reporter.Add(
      "workload/engine/warm", warm_s * 1000.0,
      {{"queries", static_cast<double>(n)},
       {"reps", kWarmReps},
       {"hit_ratio", warm_ratio},
       {"speedup_vs_standalone", warm_s > 0 ? standalone_s / warm_s : 0.0},
       {"speedup_vs_cold", warm_s > 0 ? cold_s / warm_s : 0.0}});
  std::printf(
      "engine warm batch    : %8.2f ms  (hit ratio %.2f, %.2fx vs "
      "standalone)\n",
      warm_s * 1000.0, warm_ratio, warm_s > 0 ? standalone_s / warm_s : 0.0);

  // --- Build-phase isolation: what the shared CandidateCache saves
  // where it acts. End-to-end, verification dominates these queries, so
  // the warm-batch row above moves by only a few percent; this pair
  // isolates the candidate-space build (the phase the cache serves) —
  // per-query fresh caches vs one workload-lifetime cache.
  {
    MatchOptions build_options;
    auto build_all = [&](CandidateCache* shared) {
      for (const QuerySpec& spec : workload) {
        CandidateCache fresh(g);
        auto cs = CandidateSpace::Build(spec.pattern.Pi().value().first, g,
                                        build_options, nullptr, nullptr,
                                        shared != nullptr ? shared : &fresh);
        if (!cs.ok()) Die("candidate-space build failed");
      }
    };
    double cold_build_s = TimeSeconds([&] { build_all(nullptr); });
    CandidateCache warm_cache(g);
    build_all(&warm_cache);  // populate
    double warm_build_s = TimeSeconds([&] { build_all(&warm_cache); });
    reporter.Add("build_phase/cold_per_query", cold_build_s * 1000.0,
                 {{"queries", static_cast<double>(n)}});
    reporter.Add(
        "build_phase/warm_shared", warm_build_s * 1000.0,
        {{"queries", static_cast<double>(n)},
         {"speedup_vs_cold",
          warm_build_s > 0 ? cold_build_s / warm_build_s : 0.0}});
    std::printf(
        "build phase cold/warm: %8.2f / %.2f ms  (%.2fx from the shared "
        "cache)\n",
        cold_build_s * 1000.0, warm_build_s * 1000.0,
        warm_build_s > 0 ? cold_build_s / warm_build_s : 0.0);
  }

  // --- Result cache on: repeat traffic served from memory (the server
  // steady state for clients that resubmit the same requests). Answers
  // and stored work counters replay the first evaluation — asserted —
  // so the speedup is pure evaluation skipping.
  {
    EngineOptions cached = engine_options;
    cached.enable_result_cache = true;
    QueryEngine server(&g, cached);
    std::vector<QueryOutcome> first_pass;
    {
      auto r = server.RunBatch(workload);
      if (!r.ok()) Die("result-cache first pass failed");
      first_pass = std::move(r).value();
    }
    if (Answers(first_pass) != standalone_answers) {
      Die("result-cache first-pass answers differ from standalone");
    }
    std::vector<QueryOutcome> repeat_outcomes;
    double repeat_s = TimeSeconds([&] {
      auto r = server.RunBatch(workload);
      if (!r.ok()) Die("result-cache repeat pass failed");
      repeat_outcomes = std::move(r).value();
    });
    if (Answers(repeat_outcomes) != standalone_answers) {
      Die("result-cache repeat answers differ from standalone");
    }
    for (const QueryOutcome& o : repeat_outcomes) {
      if (!o.result_cache_hit) Die("repeat pass missed the result cache");
    }
    const double result_ratio = server.stats().ResultHitRatio();
    reporter.Add(
        "workload/engine/warm_result_cache", repeat_s * 1000.0,
        {{"queries", static_cast<double>(n)},
         {"result_hit_ratio", result_ratio},
         {"speedup_vs_standalone",
          repeat_s > 0 ? standalone_s / repeat_s : 0.0}});
    std::printf(
        "engine result cache  : %8.2f ms  (result hit ratio %.2f, %.0fx vs "
        "standalone)\n",
        repeat_s * 1000.0, result_ratio,
        repeat_s > 0 ? standalone_s / repeat_s : 0.0);
  }

  // --- Interleaved vs grouped family ordering, both warm: interleaving
  // may only cost what grouped traffic costs if the cache really is
  // shared across families rather than thrashing between them.
  {
    std::vector<QuerySpec> grouped = MakeWorkload(g, /*interleaved=*/false);
    QueryEngine ordered(&g, engine_options);
    if (!ordered.RunBatch(grouped).ok()) Die("grouped warmup failed");
    double grouped_s = TimeSeconds([&] {
      if (!ordered.RunBatch(grouped).ok()) Die("grouped batch failed");
    });
    reporter.Add("workload/engine/warm_grouped", grouped_s * 1000.0,
                 {{"queries", static_cast<double>(grouped.size())}});
    std::printf("engine warm (grouped): %8.2f ms\n", grouped_s * 1000.0);
  }

  // --- Eviction pressure: hard cap forces admit-evict-readmit churn on
  // every query; answers stay identical (asserted) and the row tracks
  // what the policy costs.
  {
    EngineOptions pressured = engine_options;
    pressured.cache_max_entries = 1;
    QueryEngine churn(&g, pressured);
    std::vector<QueryOutcome> churn_outcomes;
    double churn_s = TimeSeconds([&] {
      auto r = churn.RunBatch(workload);
      if (!r.ok()) Die("pressured batch failed");
      churn_outcomes = std::move(r).value();
    });
    if (Answers(churn_outcomes) != standalone_answers) {
      Die("pressured answers differ from standalone");
    }
    reporter.Add(
        "workload/engine/evict_pressure", churn_s * 1000.0,
        {{"evicted", static_cast<double>(churn.stats().cache_evicted)}});
    std::printf("engine evict-pressure: %8.2f ms  (%llu evicted)\n",
                churn_s * 1000.0,
                static_cast<unsigned long long>(churn.stats().cache_evicted));
  }

  // --- Thread sweep, warm: identical answers at every width (the
  // determinism contract), wall clock tracking how the shared pool
  // scales. On a single-core host this is ~1x by construction.
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    EngineOptions sweep = engine_options;
    sweep.num_threads = threads;
    QueryEngine swept(&g, sweep);
    if (!swept.RunBatch(workload).ok()) Die("sweep warmup failed");
    std::vector<QueryOutcome> sweep_outcomes;
    double sweep_s = TimeSeconds([&] {
      auto r = swept.RunBatch(workload);
      if (!r.ok()) Die("sweep batch failed");
      sweep_outcomes = std::move(r).value();
    });
    if (Answers(sweep_outcomes) != standalone_answers) {
      Die("thread-sweep answers differ from standalone");
    }
    reporter.Add("engine/threads=" + std::to_string(threads) + "/warm",
                 sweep_s * 1000.0,
                 {{"threads", static_cast<double>(threads)}});
    std::printf("warm @ %zu thread(s)  : %8.2f ms\n", threads,
                sweep_s * 1000.0);
  }

  // --- Cancellation overhead: the same warm batch with a deadline
  // token armed on every query (a timeout far beyond the runtime, so it
  // never fires) vs. the unarmed baseline. The poll sites are coarse
  // (per focus / per fixpoint round) and the armed check is one relaxed
  // load plus an occasional clock read, so the gate is tight: ≤1%
  // regression on the min-of-N, measured interleaved so machine drift
  // hits both sides equally. Answers asserted identical, as always.
  {
    std::vector<QuerySpec> armed = workload;
    for (QuerySpec& spec : armed) spec.timeout_ms = 600'000;  // never fires
    QueryEngine plain(&g, engine_options);
    QueryEngine timed(&g, engine_options);
    if (!plain.RunBatch(workload).ok()) Die("cancel-baseline warmup failed");
    if (!timed.RunBatch(armed).ok()) Die("cancel-armed warmup failed");
    constexpr int kReps = 7;
    double base_min_s = 1e9, armed_min_s = 1e9;
    std::vector<QueryOutcome> armed_outcomes;
    for (int rep = 0; rep < kReps; ++rep) {
      base_min_s = std::min(base_min_s, TimeSeconds([&] {
        if (!plain.RunBatch(workload).ok()) Die("cancel-baseline rep failed");
      }));
      armed_min_s = std::min(armed_min_s, TimeSeconds([&] {
        auto r = timed.RunBatch(armed);
        if (!r.ok()) Die("cancel-armed rep failed");
        armed_outcomes = std::move(r).value();
      }));
    }
    if (Answers(armed_outcomes) != standalone_answers) {
      Die("deadline-armed answers differ from standalone");
    }
    const double overhead =
        base_min_s > 0 ? armed_min_s / base_min_s - 1.0 : 0.0;
    reporter.Add("cancel/overhead", armed_min_s * 1000.0,
                 {{"baseline_ms", base_min_s * 1000.0},
                  {"reps", kReps},
                  {"overhead_pct", overhead * 100.0}});
    std::printf(
        "cancel overhead      : %8.2f ms armed vs %.2f ms baseline "
        "(%+.2f%%)\n",
        armed_min_s * 1000.0, base_min_s * 1000.0, overhead * 100.0);
    if (overhead > 0.01) Die("armed-but-unset deadline costs more than 1%");
  }

  // --- algo = auto: the cost-based planner routes every query, cold
  // (each family's plan computed once) then warm (plans served from the
  // pattern-family cache). Answers must be identical to the manual
  // qmatch runs above — the planner is a routing layer, never a
  // semantic one — and the warm pass must hit the plan cache for every
  // repeat.
  {
    std::vector<QuerySpec> routed = workload;
    for (QuerySpec& spec : routed) spec.algo = EngineAlgo::kAuto;
    QueryEngine planner_engine(&g, engine_options);
    std::vector<QueryOutcome> auto_cold;
    double auto_cold_s = TimeSeconds([&] {
      auto r = planner_engine.RunBatch(routed);
      if (!r.ok()) Die("auto cold batch failed");
      auto_cold = std::move(r).value();
    });
    if (Answers(auto_cold) != standalone_answers) {
      Die("auto answers differ from standalone");
    }
    const EngineStats after_auto_cold = planner_engine.stats();
    reporter.Add(
        "planner/auto/cold", auto_cold_s * 1000.0,
        {{"queries", static_cast<double>(n)},
         {"plans_built", static_cast<double>(after_auto_cold.plans_built)},
         {"plan_hits", static_cast<double>(after_auto_cold.plan_hits)}});
    std::vector<QueryOutcome> auto_warm;
    double auto_warm_s = TimeSeconds([&] {
      auto r = planner_engine.RunBatch(routed);
      if (!r.ok()) Die("auto warm batch failed");
      auto_warm = std::move(r).value();
    });
    if (Answers(auto_warm) != standalone_answers) {
      Die("auto warm answers differ from standalone");
    }
    for (const QueryOutcome& o : auto_warm) {
      if (!o.plan_cache_hit) Die("auto repeat missed the plan cache");
    }
    const EngineStats after_auto_warm = planner_engine.stats();
    reporter.Add(
        "planner/auto/warm", auto_warm_s * 1000.0,
        {{"queries", static_cast<double>(n)},
         {"plan_hits", static_cast<double>(after_auto_warm.plan_hits)},
         {"speedup_vs_standalone",
          auto_warm_s > 0 ? standalone_s / auto_warm_s : 0.0}});
    std::printf(
        "planner auto cold/warm: %7.2f / %.2f ms  (%llu plans, %llu plan "
        "hits)\n",
        auto_cold_s * 1000.0, auto_warm_s * 1000.0,
        static_cast<unsigned long long>(after_auto_cold.plans_built),
        static_cast<unsigned long long>(after_auto_warm.plan_hits));
  }

  if (!reporter.Write()) Die("failed to write BENCH_engine_workload.json");
  std::printf("\nall configurations answer-identical: OK\n");
  return 0;
}
