// Exp-3: effectiveness of QGARs. Mines quantified association rules on
// the Pokec and YAGO2 substitutes (the paper's R5-R7 exemplars), reports
// support/confidence, and shows a hand-written R7-style rule with a
// multi-edge consequent that plain GPARs cannot express.
#include "bench/common/bench_common.h"
#include "core/pattern_parser.h"
#include "qgar/gar_match.h"
#include "qgar/miner.h"

namespace qgp::bench {
namespace {

void MineAndReport(const char* name, const Graph& g, double eta,
                   BenchReporter& reporter) {
  PrintGraphLine(name, g);
  MinerConfig mc;
  mc.min_confidence = eta;
  mc.min_support = 20;
  mc.max_rules = 3;
  mc.max_evaluations = 40;
  double seconds = 0;
  Result<std::vector<MinedRule>> rules = Status::Ok();
  seconds = TimeSeconds([&] { rules = MineQgars(g, mc); });
  if (!rules.ok()) {
    std::printf("  mining failed: %s\n", rules.status().ToString().c_str());
    return;
  }
  std::printf("  mined %zu rules in %.2fs (eta=%.2f):\n", rules->size(),
              seconds, eta);
  reporter.Add(std::string(name) + "/mining", seconds * 1e3,
               {{"rules", static_cast<double>(rules->size())},
                {"eta", eta}});
  for (const MinedRule& r : *rules) {
    PatternSize a = ComputePatternSize(r.rule.antecedent);
    PatternSize c = ComputePatternSize(r.rule.consequent);
    std::printf("   - %-10s |Q1|=%s |Q2|=%s support=%-6zu conf=%.3f\n",
                r.rule.name.c_str(), a.ToString().c_str(),
                c.ToString().c_str(), r.support, r.confidence);
  }
}

}  // namespace
}  // namespace qgp::bench

int main() {
  using namespace qgp::bench;
  PrintHeader("Exp-3: QGAR effectiveness (paper's R5-R7)",
              "mined rules + hand-written multi-edge-consequent rule",
              "QGARs capture behaviour conventional rules/GPARs cannot");
  BenchReporter reporter("exp3_qgar");
  qgp::Graph pokec = MakePokecLike(3000);
  MineAndReport("pokec-like", pokec, 0.5, reporter);
  qgp::Graph yago = MakeYagoLike(6000);
  MineAndReport("yago2-like", yago, 0.5, reporter);

  // R7-style: prize-winning professors who graduated students tend to
  // have advised a prize winner too — consequent with TWO edges, which
  // GPARs (single-edge consequents) cannot express.
  qgp::Qgar r7;
  r7.name = "R7-style";
  auto q1 = qgp::PatternParser::Parse(R"(
      node xo scientist
      node pr prize
      node z  scientist
      edge xo pr won
      edge xo z  advisor >=2
      focus xo
  )", yago.mutable_dict());
  auto q2 = qgp::PatternParser::Parse(R"(
      node xo scientist
      node s  scientist
      node u  university
      edge xo s advisor
      edge s  u graduated_from
      focus xo
  )", yago.mutable_dict());
  if (q1.ok() && q2.ok()) {
    r7.antecedent = std::move(q1).value();
    r7.consequent = std::move(q2).value();
    double r7_seconds = 0;
    qgp::Result<qgp::GarMatchResult> res = qgp::Status::Ok();
    r7_seconds = TimeSeconds([&] { res = qgp::GarMatch(r7, yago, 0.5); });
    if (res.ok()) {
      std::printf("\nhand-written %s (multi-edge consequent):\n",
                  r7.name.c_str());
      std::printf("  support=%zu confidence=%.3f identified=%zu\n",
                  res->support, res->confidence, res->entities.size());
      reporter.Add("yago2-like/R7-style", r7_seconds * 1e3,
                   {{"support", static_cast<double>(res->support)},
                    {"confidence", res->confidence}});
    }
  }
  return 0;
}
