// Exp-3: effectiveness of QGARs. Mines quantified association rules on
// the Pokec and YAGO2 substitutes (the paper's R5-R7 exemplars), reports
// support/confidence, and shows a hand-written R7-style rule with a
// multi-edge consequent that plain GPARs cannot express.
#include "bench/common/bench_common.h"
#include "core/pattern_parser.h"
#include "qgar/gar_match.h"
#include "qgar/miner.h"

namespace qgp::bench {
namespace {

void MineAndReport(const char* name, const Graph& g, double eta,
                   BenchReporter& reporter) {
  PrintGraphLine(name, g);
  MinerConfig mc;
  mc.min_confidence = eta;
  mc.min_support = 20;
  mc.max_rules = 3;
  mc.max_evaluations = 40;
  double seconds = 0;
  Result<std::vector<MinedRule>> rules = Status::Ok();
  seconds = TimeSeconds([&] { rules = MineQgars(g, mc); });
  if (!rules.ok()) {
    std::printf("  mining failed: %s\n", rules.status().ToString().c_str());
    return;
  }
  std::printf("  mined %zu rules in %.2fs (eta=%.2f):\n", rules->size(),
              seconds, eta);
  reporter.Add(std::string(name) + "/mining", seconds * 1e3,
               {{"rules", static_cast<double>(rules->size())},
                {"eta", eta}});
  for (const MinedRule& r : *rules) {
    PatternSize a = ComputePatternSize(r.rule.antecedent);
    PatternSize c = ComputePatternSize(r.rule.consequent);
    std::printf("   - %-10s |Q1|=%s |Q2|=%s support=%-6zu conf=%.3f\n",
                r.rule.name.c_str(), a.ToString().c_str(),
                c.ToString().c_str(), r.support, r.confidence);
  }

  // The same mining run under algo = auto: the enlargement loop's
  // quantifier-only variants are the plan cache's design workload, so
  // the planner must serve them from one family entry (asserted below)
  // while mining the exact same rules.
  MinerConfig ac = mc;
  ac.algo = EngineAlgo::kAuto;
  EngineStats engine_stats;
  Result<std::vector<MinedRule>> auto_rules = Status::Ok();
  double auto_seconds =
      TimeSeconds([&] { auto_rules = MineQgars(g, ac, &engine_stats); });
  if (!auto_rules.ok()) {
    std::printf("FATAL: auto mining failed: %s\n",
                auto_rules.status().ToString().c_str());
    std::exit(1);
  }
  if (auto_rules->size() != rules->size()) {
    std::printf("FATAL: auto mining found %zu rules, manual found %zu\n",
                auto_rules->size(), rules->size());
    std::exit(1);
  }
  for (size_t i = 0; i < rules->size(); ++i) {
    const MinedRule& manual = (*rules)[i];
    const MinedRule& automatic = (*auto_rules)[i];
    if (manual.rule.name != automatic.rule.name ||
        manual.support != automatic.support ||
        manual.confidence != automatic.confidence) {
      std::printf("FATAL: auto-mined rule %zu differs from manual\n", i);
      std::exit(1);
    }
  }
  if (engine_stats.plan_hits == 0) {
    std::printf("FATAL: auto mining never hit the plan cache\n");
    std::exit(1);
  }
  std::printf(
      "  auto mining: identical rules in %.2fs (%llu plans built, %llu plan "
      "hits)\n",
      auto_seconds, static_cast<unsigned long long>(engine_stats.plans_built),
      static_cast<unsigned long long>(engine_stats.plan_hits));
  reporter.Add(std::string(name) + "/mining_auto", auto_seconds * 1e3,
               {{"rules", static_cast<double>(auto_rules->size())},
                {"plans_built", static_cast<double>(engine_stats.plans_built)},
                {"plan_hits", static_cast<double>(engine_stats.plan_hits)}});
}

}  // namespace
}  // namespace qgp::bench

int main() {
  using namespace qgp::bench;
  PrintHeader("Exp-3: QGAR effectiveness (paper's R5-R7)",
              "mined rules + hand-written multi-edge-consequent rule",
              "QGARs capture behaviour conventional rules/GPARs cannot");
  BenchReporter reporter("exp3_qgar");
  qgp::Graph pokec = MakePokecLike(3000);
  MineAndReport("pokec-like", pokec, 0.5, reporter);
  qgp::Graph yago = MakeYagoLike(6000);
  MineAndReport("yago2-like", yago, 0.5, reporter);

  // R7-style: prize-winning professors who graduated students tend to
  // have advised a prize winner too — consequent with TWO edges, which
  // GPARs (single-edge consequents) cannot express.
  qgp::Qgar r7;
  r7.name = "R7-style";
  auto q1 = qgp::PatternParser::Parse(R"(
      node xo scientist
      node pr prize
      node z  scientist
      edge xo pr won
      edge xo z  advisor >=2
      focus xo
  )", yago.mutable_dict());
  auto q2 = qgp::PatternParser::Parse(R"(
      node xo scientist
      node s  scientist
      node u  university
      edge xo s advisor
      edge s  u graduated_from
      focus xo
  )", yago.mutable_dict());
  if (q1.ok() && q2.ok()) {
    r7.antecedent = std::move(q1).value();
    r7.consequent = std::move(q2).value();
    double r7_seconds = 0;
    qgp::Result<qgp::GarMatchResult> res = qgp::Status::Ok();
    r7_seconds = TimeSeconds([&] { res = qgp::GarMatch(r7, yago, 0.5); });
    if (res.ok()) {
      std::printf("\nhand-written %s (multi-edge consequent):\n",
                  r7.name.c_str());
      std::printf("  support=%zu confidence=%.3f identified=%zu\n",
                  res->support, res->confidence, res->entities.size());
      reporter.Add("yago2-like/R7-style", r7_seconds * 1e3,
                   {{"support", static_cast<double>(res->support)},
                    {"confidence", res->confidence}});
    }
  }
  return 0;
}
