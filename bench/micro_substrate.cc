// Micro-benchmarks (google-benchmark) for the graph substrate primitives
// the matchers lean on: label-sliced adjacency, edge membership, ball
// extraction, dual simulation, candidate-space construction and base
// partitioning.
#include <benchmark/benchmark.h>

#include "bench/common/bench_common.h"
#include "core/candidate_space.h"
#include "core/simulation.h"
#include "graph/graph_algorithms.h"
#include "parallel/base_partitioner.h"

namespace qgp::bench {
namespace {

const Graph& SharedGraph() {
  static const Graph* g = new Graph(MakePokecLike(2000));
  return *g;
}

const Pattern& SharedPattern() {
  static Pattern* p = [] {
    const Graph& g = SharedGraph();
    auto* pattern = new Pattern(
        MakeSuite(g, 1, PatternConfig(5, 7, 30.0, 0), 77).at(0));
    return pattern;
  }();
  return *p;
}

void BM_OutNeighborsWithLabel(benchmark::State& state) {
  const Graph& g = SharedGraph();
  Label follow = g.dict().Find("follow");
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.OutNeighborsWithLabel(v, follow).size());
    v = (v + 1) % static_cast<VertexId>(g.num_vertices() / 2);
  }
}
BENCHMARK(BM_OutNeighborsWithLabel);

void BM_HasEdge(benchmark::State& state) {
  const Graph& g = SharedGraph();
  Label follow = g.dict().Find("follow");
  // Wrap at |V|, not a fixed 1000: tiny-scale graphs are smaller than
  // that and a fixed modulus walks off the CSR offsets.
  const VertexId n = static_cast<VertexId>(g.num_vertices());
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.HasEdge(v, (v * 7 + 3) % n, follow));
    v = (v + 1) % n;
  }
}
BENCHMARK(BM_HasEdge);

void BM_KHopBall(benchmark::State& state) {
  const Graph& g = SharedGraph();
  const int d = static_cast<int>(state.range(0));
  VertexId v = 0;
  size_t total = 0;
  for (auto _ : state) {
    total += KHopBall(g, v, d).size();
    v = (v + 17) % static_cast<VertexId>(g.num_vertices());
  }
  state.counters["avg_ball"] =
      static_cast<double>(total) /
      static_cast<double>(state.iterations() ? state.iterations() : 1);
}
BENCHMARK(BM_KHopBall)->Arg(1)->Arg(2);

void BM_DualSimulation(benchmark::State& state) {
  const Graph& g = SharedGraph();
  const Pattern& q = SharedPattern();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DualSimulation(q, g));
  }
}
BENCHMARK(BM_DualSimulation);

void BM_CandidateSpaceBuild(benchmark::State& state) {
  const Graph& g = SharedGraph();
  const Pattern& q = SharedPattern();
  MatchOptions opts;
  for (auto _ : state) {
    auto cs = CandidateSpace::Build(q, g, opts, nullptr);
    benchmark::DoNotOptimize(cs.ok());
  }
}
BENCHMARK(BM_CandidateSpaceBuild);

void BM_BasePartition(benchmark::State& state) {
  const Graph& g = SharedGraph();
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto frag = BasePartition(g, n);
    benchmark::DoNotOptimize(frag.ok());
  }
}
BENCHMARK(BM_BasePartition)->Arg(4)->Arg(16);

}  // namespace
}  // namespace qgp::bench

// BENCHMARK_MAIN, plus default --benchmark_out flags so this binary also
// drops a BENCH_micro_substrate.json (google-benchmark's JSON schema)
// next to the BenchReporter files; explicit flags still win.
int main(int argc, char** argv) {
  std::string out_flag = "--benchmark_out=" +
                         qgp::bench::BenchReporter::OutputDir() +
                         "/BENCH_micro_substrate.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  // Defaults go right after argv[0] so explicit command-line flags,
  // parsed later, take precedence.
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
