// Figure 8(f): varying pattern size |Q| = (|VQ|, |EQ|) from (4,6) to
// (8,10) on the Pokec substitute, n = 8, pa = 30%, one negated edge.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(f): varying |Q| (Pokec)",
              "(|VQ|,|EQ|) from (4,6) to (8,10); n=8, pa=30%, |E-Q|=1",
              "all algorithms slow with larger |Q|; PQMatch fastest");
  qgp::Graph g = MakePokecLike(4000);
  PrintGraphLine("pokec-like", g);
  qgp::DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  auto part = qgp::DPar(g, dc);
  if (!part.ok()) return 1;
  BenchReporter reporter("fig8f_vary_q_social");
  std::printf("\n");
  PrintAlgoHeader("|Q|");
  for (size_t vq : {4, 5, 6, 7, 8}) {
    size_t eq = vq + 2;
    std::vector<qgp::Pattern> suite = MakeSuite(g, 2, PatternConfig(vq, eq, 30.0, 1), 401 + vq, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
    if (suite.empty()) {
      std::printf("   (%zu,%zu)  pattern generation failed\n", vq, eq);
      continue;
    }
    char label[16];
    std::snprintf(label, sizeof(label), "(%zu,%zu)", vq, eq);
    RunAndPrintRow(label, suite, *part, &reporter);
  }
  return 0;
}
