// Figure 8(l): varying the synthetic graph size |G| = (|V|, |E|); n = 4.
// The paper sweeps (10M,20M) to (50M,100M) on a cluster; the default
// small scale sweeps (10k,20k) to (50k,100k) — set QGP_BENCH_SCALE=large
// to grow by 16x. The shape under test: PQMatch scales near-linearly in
// |G| and stays the fastest of the four variants.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(l): varying |G| (synthetic)",
              "|G| from (10k,20k)x scale to (50k,100k)x scale; n=4, d=2",
              "PQMatch ~linear in |G|; 1.5/2.3/4.7x faster than "
              "PQMatchn/PQMatchs/PEnum");
  const double f = ScaleFactor();
  BenchReporter reporter("fig8l_vary_g_synthetic");
  std::printf("\n");
  PrintAlgoHeader("|V|");
  for (size_t base : {10, 20, 30, 40, 50}) {
    size_t nv = static_cast<size_t>(base * 1000 * f);
    size_t ne = nv * 2;
    qgp::Graph g = MakeSynthetic(nv, ne);
    std::vector<qgp::Pattern> suite = MakeSuite(g, 2, PatternConfig(5, 7, 30.0, 1), 1001 + base, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
    if (suite.empty()) {
      std::printf("%8zu  pattern generation failed\n", nv);
      continue;
    }
    qgp::DParConfig dc;
    dc.num_fragments = 4;
    dc.d = 2;
    auto part = qgp::DPar(g, dc);
    if (!part.ok()) {
      std::printf("%8zu  DPar failed\n", nv);
      continue;
    }
    RunAndPrintRow("V=" + std::to_string(nv), suite, *part, &reporter);
  }
  return 0;
}
