// Mutable-graph maintenance: what a batched delta costs against the
// from-scratch alternative, at three layers —
//
//   * graph      : Graph::ApplyDelta (touched-CSR-slice rebuild) vs a
//                  full GraphBuilder rebuild of the post-delta graph,
//   * space      : CandidateSpace::Repair (delta-seeded fixpoint) vs a
//                  fresh CandidateSpace::Build on the mutated graph,
//   * engine     : re-querying a warm QueryEngine after ApplyDelta with
//                  the delta-repair store on vs off (rebuild-requery),
//
// swept over delta sizes {1, 16, 128} edge operations. Every compared
// pair is asserted identical first (graph content, candidate-set
// members, answers) — the maintenance win can never come from computing
// something different. Emits BENCH_delta_maintenance.json; the CI bench
// gate watches the chunky rows.
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench/common/bench_common.h"
#include "common/thread_pool.h"
#include "core/candidate_space.h"
#include "engine/query_engine.h"
#include "graph/graph_builder.h"
#include "graph/graph_delta.h"

using namespace qgp;
using namespace qgp::bench;

namespace {

void Die(const char* what) {
  std::printf("FATAL: %s\n", what);
  std::exit(1);
}

// A delta of `ops` edge operations over the current graph: ~3/4 edge
// inserts between random alive vertices (labels drawn from existing
// edges) and ~1/4 removals of existing edges. Deterministic in `rng`.
GraphDelta RandomEdgeDelta(const Graph& g, std::mt19937_64& rng, size_t ops) {
  std::vector<VertexId> alive;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_label(v) != kInvalidLabel) alive.push_back(v);
  }
  auto pick = [&] { return alive[rng() % alive.size()]; };
  // Edge labels present in the graph, sampled from random vertices.
  std::vector<Label> edge_labels;
  while (edge_labels.size() < 4) {
    const auto nbrs = g.OutNeighbors(pick());
    if (!nbrs.empty()) edge_labels.push_back(nbrs[rng() % nbrs.size()].label);
  }
  GraphDelta d;
  for (size_t i = 0; i < ops; ++i) {
    if (i % 4 == 3) {
      // Remove an existing out-edge of some alive vertex (set semantics
      // make a repeat removal harmless).
      for (int tries = 0; tries < 32; ++tries) {
        const VertexId src = pick();
        const auto nbrs = g.OutNeighbors(src);
        if (nbrs.empty()) continue;
        const Neighbor n = nbrs[rng() % nbrs.size()];
        d.remove_edges.push_back({src, n.v, n.label});
        break;
      }
    } else {
      d.add_edges.push_back(
          {pick(), pick(), edge_labels[rng() % edge_labels.size()]});
    }
  }
  return d;
}

// The rebuild strategy's unit of work: reconstruct the whole graph
// (tombstones included) through GraphBuilder.
Graph RebuildLike(const Graph& g) {
  GraphBuilder b(g.dict());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    b.AddVertexWithLabel(g.vertex_label(v));
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& n : g.OutNeighbors(v)) {
      if (!b.AddEdgeWithLabel(v, n.v, n.label).ok()) Die("rebuild add edge");
    }
  }
  auto built = std::move(b).Build();
  if (!built.ok()) Die("rebuild failed");
  return std::move(built).value();
}

bool SameSets(const CandidateSpace& a, const CandidateSpace& b,
              const Pattern& p) {
  for (PatternNodeId u = 0; u < p.num_nodes(); ++u) {
    if (!std::equal(a.stratified(u).begin(), a.stratified(u).end(),
                    b.stratified(u).begin(), b.stratified(u).end()) ||
        !std::equal(a.good(u).begin(), a.good(u).end(), b.good(u).begin(),
                    b.good(u).end())) {
      return false;
    }
  }
  return true;
}

std::vector<AnswerSet> Answers(const std::vector<QueryOutcome>& outcomes) {
  std::vector<AnswerSet> answers;
  answers.reserve(outcomes.size());
  for (const QueryOutcome& o : outcomes) answers.push_back(o.answers);
  return answers;
}

}  // namespace

int main() {
  PrintHeader("delta_maintenance — incremental maintenance vs rebuild",
              "Pokec-like graph, edge-op deltas of size 1 / 16 / 128",
              "apply+repair beats rebuild, most at small deltas");
  Graph base = MakePokecLike(2000);
  PrintGraphLine("graph", base);
  BenchReporter reporter("delta_maintenance");

  std::vector<Pattern> patterns =
      MakeSuite(base, 4, PatternConfig(4, 5, 30.0, 0), /*seed=*/303);
  if (patterns.empty()) Die("pattern generation produced no patterns");
  std::printf("patterns: %zu\n\n", patterns.size());

  const size_t kDeltaSizes[] = {1, 16, 128};
  constexpr int kReps = 8;

  for (size_t ops : kDeltaSizes) {
    std::mt19937_64 rng(1000 + ops);
    const std::string suffix = "/k=" + std::to_string(ops);

    // --- Graph layer: kReps sequential deltas applied in place vs the
    // per-delta cost of the rebuild strategy (one full reconstruction).
    Graph cursor = base;
    std::vector<GraphDelta> deltas;
    for (int r = 0; r < kReps; ++r) {
      deltas.push_back(RandomEdgeDelta(cursor, rng, ops));
      if (!cursor.ApplyDelta(deltas.back()).ok()) Die("delta pre-pass");
    }
    cursor = base;
    double apply_s = TimeSeconds([&] {
      for (const GraphDelta& d : deltas) {
        if (!cursor.ApplyDelta(d).ok()) Die("ApplyDelta failed");
      }
    });
    Graph rebuilt;
    double rebuild_s = TimeSeconds([&] { rebuilt = RebuildLike(cursor); });
    if (!ContentEquals(cursor, rebuilt)) Die("apply != rebuild");
    const double apply_ms = apply_s * 1000.0 / kReps;
    const double rebuild_ms = rebuild_s * 1000.0;
    reporter.Add("graph/apply" + suffix, apply_ms,
                 {{"ops", static_cast<double>(ops)},
                  {"speedup_vs_rebuild",
                   apply_ms > 0 ? rebuild_ms / apply_ms : 0.0}});
    reporter.Add("graph/rebuild" + suffix, rebuild_ms,
                 {{"ops", static_cast<double>(ops)}});
    std::printf("graph  k=%3zu: apply %8.3f ms/delta   rebuild %8.2f ms  "
                "(%.1fx)\n",
                ops, apply_ms, rebuild_ms,
                apply_ms > 0 ? rebuild_ms / apply_ms : 0.0);

    // --- Space layer: Repair the pre-delta spaces across ONE delta vs
    // fresh Builds on the mutated graph, summed over the pattern suite.
    Graph post = base;
    GraphDelta one = RandomEdgeDelta(post, rng, ops);
    auto summary = post.ApplyDelta(one);
    if (!summary.ok()) Die("space-layer delta failed");
    MatchOptions options;
    std::vector<Pattern> positive;
    std::vector<CandidateSpace> spaces;
    for (const Pattern& q : patterns) {
      positive.push_back(q.Pi().value().first);
      auto cs = CandidateSpace::Build(positive.back(), base, options, nullptr);
      if (!cs.ok()) Die("pre-delta Build failed");
      spaces.push_back(std::move(cs).value());
    }
    std::vector<CandidateSpace> repaired;
    double repair_s = TimeSeconds([&] {
      for (size_t i = 0; i < positive.size(); ++i) {
        auto cs = CandidateSpace::Repair(spaces[i], positive[i], post,
                                         *summary, options, nullptr);
        if (!cs.ok()) Die("Repair failed");
        repaired.push_back(std::move(cs).value());
      }
    });
    std::vector<CandidateSpace> fresh;
    double build_s = TimeSeconds([&] {
      for (const Pattern& p : positive) {
        auto cs = CandidateSpace::Build(p, post, options, nullptr);
        if (!cs.ok()) Die("post-delta Build failed");
        fresh.push_back(std::move(cs).value());
      }
    });
    for (size_t i = 0; i < positive.size(); ++i) {
      if (!SameSets(repaired[i], fresh[i], positive[i])) {
        Die("Repair sets differ from Build");
      }
    }
    reporter.Add("space/repair" + suffix, repair_s * 1000.0,
                 {{"ops", static_cast<double>(ops)},
                  {"patterns", static_cast<double>(positive.size())},
                  {"speedup_vs_build",
                   repair_s > 0 ? build_s / repair_s : 0.0}});
    reporter.Add("space/build" + suffix, build_s * 1000.0,
                 {{"ops", static_cast<double>(ops)},
                  {"patterns", static_cast<double>(positive.size())}});
    std::printf("space  k=%3zu: repair %8.2f ms         build %8.2f ms  "
                "(%.1fx)\n",
                ops, repair_s * 1000.0, build_s * 1000.0,
                repair_s > 0 ? build_s / repair_s : 0.0);

    // --- Engine layer: warm engine, one delta, re-run the workload —
    // with the delta-repair store on vs off. Same answers, different
    // maintenance work.
    std::vector<QuerySpec> workload;
    for (size_t i = 0; i < patterns.size(); ++i) {
      QuerySpec spec;
      spec.pattern = patterns[i];
      spec.tag = "q" + std::to_string(i);
      workload.push_back(std::move(spec));
    }
    auto requery = [&](bool repair_on, std::vector<AnswerSet>* answers_out,
                       uint64_t* repair_hits) -> double {
      EngineOptions eo;
      eo.num_threads = 1;
      eo.enable_delta_repair = repair_on;
      QueryEngine engine(Graph(base), eo);
      auto warm = engine.RunBatch(workload);
      if (!warm.ok()) Die("warm batch failed");
      auto outcome = engine.ApplyDelta(one);
      if (!outcome.ok()) Die("engine delta failed");
      std::vector<QueryOutcome> after;
      const double seconds = TimeSeconds([&] {
        auto r = engine.RunBatch(workload);
        if (!r.ok()) Die("requery batch failed");
        after = std::move(r).value();
      });
      *answers_out = Answers(after);
      *repair_hits = engine.stats().repair_hits;
      return seconds;
    };
    std::vector<AnswerSet> with_repair, without_repair;
    uint64_t hits = 0, unused = 0;
    const double repair_requery_s = requery(true, &with_repair, &hits);
    const double rebuild_requery_s = requery(false, &without_repair, &unused);
    if (with_repair != without_repair) {
      Die("repair-requery answers differ from rebuild-requery");
    }
    reporter.Add("engine/repair_requery" + suffix, repair_requery_s * 1000.0,
                 {{"ops", static_cast<double>(ops)},
                  {"repair_hits", static_cast<double>(hits)},
                  {"speedup_vs_rebuild",
                   repair_requery_s > 0 ? rebuild_requery_s / repair_requery_s
                                        : 0.0}});
    reporter.Add("engine/rebuild_requery" + suffix,
                 rebuild_requery_s * 1000.0,
                 {{"ops", static_cast<double>(ops)}});
    std::printf("engine k=%3zu: repair %8.2f ms         rebuild %8.2f ms  "
                "(%.1fx, %llu repair hits)\n\n",
                ops, repair_requery_s * 1000.0, rebuild_requery_s * 1000.0,
                repair_requery_s > 0 ? rebuild_requery_s / repair_requery_s
                                     : 0.0,
                static_cast<unsigned long long>(hits));
  }

  if (!reporter.Write()) Die("failed to write BENCH json");
  return 0;
}
