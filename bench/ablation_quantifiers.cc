// Ablation A2: quantifier machinery. (a) sequential IncQMatch vs full
// recomputation as |E−Q| grows (the sequential analogue of Fig. 8(h));
// (b) cost by quantifier kind at fixed topology (existential vs numeric
// vs ratio vs universal).
#include "bench/common/bench_common.h"
#include "core/qmatch.h"

namespace qgp::bench {
namespace {

double RunSuite(const Graph& g, const std::vector<Pattern>& suite,
                const MatchOptions& opts, size_t* answers) {
  double seconds = 0;
  for (const Pattern& q : suite) {
    seconds += TimeSeconds([&] {
      auto r = QMatch::Evaluate(q, g, opts);
      if (r.ok() && answers != nullptr) *answers += r->size();
    });
  }
  return seconds;
}

}  // namespace
}  // namespace qgp::bench

int main() {
  using namespace qgp::bench;
  PrintHeader("Ablation: quantifier machinery",
              "(a) IncQMatch vs recompute by |E-Q|; (b) cost by "
              "quantifier kind",
              "incremental negation flat in |E-Q|; recompute grows");
  qgp::Graph g = MakePokecLike(4000);
  PrintGraphLine("pokec-like", g);
  BenchReporter reporter("ablation_quantifiers");

  std::printf("\n(a) sequential negation handling, (6,8,30%%):\n");
  std::printf("%8s  %14s  %14s\n", "|E-Q|", "IncQMatch (s)",
              "recompute (s)");
  for (size_t neg : {0, 1, 2, 3}) {
    std::vector<qgp::Pattern> suite = MakeSuite(
        g, 2, PatternConfig(6, 8, 30.0, neg), 1201 + neg);
    if (suite.empty()) {
      std::printf("%8zu  generation failed\n", neg);
      continue;
    }
    qgp::MatchOptions inc;
    qgp::MatchOptions recompute;
    recompute.use_incremental_negation = false;
    double ti = RunSuite(g, suite, inc, nullptr);
    double tr = RunSuite(g, suite, recompute, nullptr);
    std::printf("%8zu  %14.3f  %14.3f\n", neg, ti, tr);
    reporter.Add("neg=" + std::to_string(neg) + "/IncQMatch", ti * 1e3);
    reporter.Add("neg=" + std::to_string(neg) + "/recompute", tr * 1e3);
  }

  std::printf("\n(b) cost by quantifier kind, same topology (5,7):\n");
  std::vector<qgp::Pattern> base =
      MakeSuite(g, 2, PatternConfig(5, 7, 50.0, 0), 1301);
  if (base.empty()) {
    std::printf("generation failed\n");
    return 1;
  }
  struct Kind {
    const char* name;
    qgp::Quantifier quant;
  };
  Kind kinds[] = {
      {"existential (>=1)", qgp::Quantifier()},
      {"numeric (>=3)", qgp::Quantifier::Numeric(qgp::QuantOp::kGe, 3)},
      {"ratio (>=50%)", qgp::Quantifier::Ratio(qgp::QuantOp::kGe, 50.0)},
      {"universal (=100%)", qgp::Quantifier::Universal()},
  };
  for (const Kind& k : kinds) {
    std::vector<qgp::Pattern> suite;
    for (const qgp::Pattern& b : base) {
      qgp::Pattern q;
      for (qgp::PatternNodeId u = 0; u < b.num_nodes(); ++u) {
        q.AddNode(b.node(u).label, b.node(u).name);
      }
      for (qgp::PatternEdgeId e = 0; e < b.num_edges(); ++e) {
        const qgp::PatternEdge& pe = b.edge(e);
        qgp::Quantifier quant =
            pe.quantifier.IsExistential() ? pe.quantifier : k.quant;
        (void)q.AddEdge(pe.src, pe.dst, pe.label, quant);
      }
      (void)q.set_focus(b.focus());
      suite.push_back(std::move(q));
    }
    size_t answers = 0;
    double t = RunSuite(g, suite, {}, &answers);
    std::printf("  %-20s  %10.3fs  answers=%zu\n", k.name, t, answers);
    reporter.Add(std::string("kind/") + k.name, t * 1e3,
                 {{"answers", static_cast<double>(answers)}});
  }
  return 0;
}
