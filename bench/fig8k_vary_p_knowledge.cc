// Figure 8(k): varying pa from 10% to 90% on the YAGO2 substitute;
// n = 8, (5,7), |E−Q| = 1.
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(k): varying pa (YAGO2)",
              "pa in {10,30,50,70,90}%; n=8, (5,7), |E-Q|=1",
              "QMatch family faster with larger pa; PEnum indifferent");
  qgp::Graph g = MakeYagoLike(8000);
  PrintGraphLine("yago2-like", g);
  qgp::DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  auto part = qgp::DPar(g, dc);
  if (!part.ok()) return 1;
  std::vector<qgp::Pattern> base =
      MakeSuite(g, 2, PatternConfig(5, 7, 30.0, 1), 901, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
  if (base.empty()) {
    std::printf("pattern generation failed\n");
    return 1;
  }
  BenchReporter reporter("fig8k_vary_p_knowledge");
  std::printf("\n");
  PrintAlgoHeader("pa%");
  for (double pa : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    std::vector<qgp::Pattern> suite;
    for (const qgp::Pattern& q : base) {
      suite.push_back(WithRatioPercent(q, pa));
    }
    RunAndPrintRow("pa=" + std::to_string(static_cast<int>(pa)), suite,
                   *part, &reporter);
  }
  return 0;
}
