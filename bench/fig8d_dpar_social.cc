// Figure 8(d): DPar d-hop preserving partition time on the Pokec
// substitute, varying n, for d = 2 and (incrementally extended) d = 3.
// Reported time is the simulated parallel time: coordinator phases plus
// the makespans of the per-fragment ball-extraction and materialization
// phases (DESIGN.md §3). The n=8/d=2 point is additionally measured as
// real wall time with partitioning fanned out over the work-stealing
// pool, identity-checked against the serial partition.
#include "bench/common/bench_common.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(d): DPar partition time, varying n (Pokec)",
              "d=2 and d=3, n in {4,8,12,16,20}",
              "~3.5x faster from n=4 to 20 (d=2); skew >= 0.8 at n=8");
  qgp::Graph g = MakePokecLike(3000);
  PrintGraphLine("pokec-like", g);
  BenchReporter reporter("fig8d_dpar_social");
  std::printf("\n%8s  %12s  %12s  %8s  %8s\n", "n", "d=2 (s)", "d=3 (s)",
              "skew d=2", "border");
  double first = 0, last = 0;
  for (size_t n : {4, 8, 12, 16, 20}) {
    qgp::DParConfig dc;
    dc.num_fragments = n;
    dc.d = 2;
    qgp::DParTimings t2;
    auto p2 = qgp::DPar(g, dc, &t2);
    if (!p2.ok()) {
      std::printf("DPar failed: %s\n", p2.status().ToString().c_str());
      return 1;
    }
    dc.d = 3;
    qgp::DParTimings t3;
    auto p3 = qgp::DPar(g, dc, &t3);
    if (!p3.ok()) return 1;
    std::printf("%8zu  %12.3f  %12.3f  %8.2f  %8zu\n", n,
                t2.ParallelSeconds(), t3.ParallelSeconds(), p2->Skew(),
                p2->num_border_nodes);
    reporter.Add("n=" + std::to_string(n) + "/d=2",
                 t2.ParallelSeconds() * 1e3,
                 {{"skew", p2->Skew()},
                  {"border", static_cast<double>(p2->num_border_nodes)}});
    reporter.Add("n=" + std::to_string(n) + "/d=3",
                 t3.ParallelSeconds() * 1e3);
    if (n == 4) first = t2.ParallelSeconds();
    last = t2.ParallelSeconds();
  }
  if (last > 0) {
    std::printf("\nDPar speedup n=4 -> n=20 (d=2): %.2fx (paper: ~3.5x)\n",
                first / last);
  }

  // Real-threads partitioning: serial wall vs the work-stealing pool.
  if (!ReportPoolVsSerialDPar(g, reporter)) return 1;
  return 0;
}
