// Figure 8(h): varying the number of negated edges |E−Q| from 0 to 4 on
// the Pokec substitute; n = 8, (|VQ|,|EQ|) = (6,8), pa = 30%. Measures
// IncQMatch's effectiveness: PQMatch/PQMatchs stay nearly flat while
// PQMatchn/PEnum grow with each recomputed Π(Q⁺ᵉ).
#include "bench/common/parallel_runner.h"
#include "parallel/dpar.h"

int main() {
  using namespace qgp::bench;
  PrintHeader("Figure 8(h): varying |E-Q| (Pokec)",
              "|E-Q| in 0..4; n=8, (6,8), pa=30%",
              "PQMatch near-flat; PQMatchn/PEnum grow with |E-Q| "
              "(improvement 1.1->2x and 3.1->5x)");
  qgp::Graph g = MakePokecLike(4000);
  PrintGraphLine("pokec-like", g);
  qgp::DParConfig dc;
  dc.num_fragments = 8;
  dc.d = 2;
  auto part = qgp::DPar(g, dc);
  if (!part.ok()) return 1;
  BenchReporter reporter("fig8h_vary_neg_social");
  std::printf("\n");
  PrintAlgoHeader("|E-Q|");
  for (size_t neg : {0, 1, 2, 3, 4}) {
    std::vector<qgp::Pattern> suite = MakeSuite(g, 2, PatternConfig(6, 8, 30.0, neg), 601 + neg, /*max_radius=*/2,
        /*enum_probe_cap=*/400000);
    if (suite.empty()) {
      std::printf("%8zu  pattern generation failed\n", neg);
      continue;
    }
    RunAndPrintRow("neg=" + std::to_string(neg), suite, *part, &reporter);
  }
  return 0;
}
